"""Cache write races: the fleet's data plane must never serve torn reads.

Distributed workers on different hosts (or chaos-killed processes mid
``put``) race on the same fingerprint.  The atomic-rename protocol must
guarantee a reader sees either nothing or one complete, valid entry —
never a partial file — and that the last writer's payload wins intact.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.harness.cache import MeasurementCache

FINGERPRINT = "deadbeef" * 8


def _hammer_put(directory, fingerprint, worker, rounds, barrier):
    cache = MeasurementCache(directory)
    barrier.wait()
    for round_index in range(rounds):
        cache.put(fingerprint, {"worker": worker, "round": round_index}, 0.01)


def _hammer_get(directory, fingerprint, rounds, barrier, failures):
    cache = MeasurementCache(directory)
    barrier.wait()
    for _ in range(rounds):
        entry = cache.get(fingerprint)
        if entry is None:
            continue  # nothing yet — fine
        result = entry.result
        if (
            not isinstance(result, dict)
            or set(result) != {"worker", "round"}
            or entry.fingerprint != fingerprint
        ):
            failures.put(repr(result))
            return


@pytest.mark.parametrize("writers", [2, 4])
def test_racing_writers_never_tear_an_entry(tmp_path, writers):
    directory = str(tmp_path / "cache")
    context = multiprocessing.get_context("spawn")
    rounds = 40
    barrier = context.Barrier(writers + 1)
    failures = context.Queue()
    processes = [
        context.Process(
            target=_hammer_put,
            args=(directory, FINGERPRINT, w, rounds, barrier),
        )
        for w in range(writers)
    ]
    reader = context.Process(
        target=_hammer_get,
        args=(directory, FINGERPRINT, rounds * writers, barrier, failures),
    )
    for process in [*processes, reader]:
        process.start()
    for process in [*processes, reader]:
        process.join(timeout=60.0)
        assert process.exitcode == 0

    assert failures.empty(), f"reader saw a torn entry: {failures.get()}"
    # After the dust settles the entry is whole and one writer's final
    # round survived.
    final = MeasurementCache(directory).get(FINGERPRINT)
    assert final is not None
    assert final.result["round"] == rounds - 1
    assert final.result["worker"] in range(writers)


def test_no_temp_file_litter_after_race(tmp_path):
    directory = str(tmp_path / "cache")
    context = multiprocessing.get_context("spawn")
    barrier = context.Barrier(3)
    processes = [
        context.Process(
            target=_hammer_put, args=(directory, FINGERPRINT, w, 25, barrier)
        )
        for w in range(2)
    ]
    for process in processes:
        process.start()
    barrier.wait()
    for process in processes:
        process.join(timeout=60.0)
        assert process.exitcode == 0
    bucket = os.path.join(directory, "objects", FINGERPRINT[:2])
    leftovers = [n for n in os.listdir(bucket) if n.startswith(".tmp_")]
    assert leftovers == []
