"""Unit tests for the experiment runner."""

import pytest

from repro.graphs import build_csr, uniform_random_graph
from repro.harness import measure_kernel, run_experiment
from repro.kernels import make_kernel
from tests.kernels.conftest import TINY_MACHINE


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(4096, 8, seed=71))


def test_run_experiment_fields(graph):
    m = run_experiment(graph, "dpb", machine=TINY_MACHINE, graph_name="g")
    assert m.graph_name == "g"
    assert m.method == "dpb"
    assert m.num_vertices == 4096
    assert m.num_edges == graph.num_edges
    assert m.reads > 0 and m.writes > 0
    assert m.requests == m.reads + m.writes
    assert m.seconds > 0
    assert m.reads_per_second > 0


def test_measure_kernel_equivalent_to_run_experiment(graph):
    a = run_experiment(graph, "baseline", machine=TINY_MACHINE)
    b = measure_kernel(make_kernel(graph, "baseline", TINY_MACHINE))
    assert a.reads == b.reads
    assert a.seconds == pytest.approx(b.seconds)


def test_speedup_and_reduction_relations(graph):
    base = run_experiment(graph, "baseline", machine=TINY_MACHINE)
    dpb = run_experiment(graph, "dpb", machine=TINY_MACHINE)
    assert dpb.speedup_over(base) == pytest.approx(base.seconds / dpb.seconds)
    assert dpb.communication_reduction_over(base) == pytest.approx(
        base.requests / dpb.requests
    )
    assert base.speedup_over(base) == pytest.approx(1.0)


def test_gail_consistency(graph):
    m = run_experiment(graph, "cb", machine=TINY_MACHINE)
    gail = m.gail()
    assert gail.requests_per_edge == pytest.approx(m.requests / m.num_edges)
    assert gail.instructions_per_edge == pytest.approx(m.instructions / m.num_edges)


def test_kernel_kwargs_forwarded(graph):
    narrow = run_experiment(graph, "dpb", machine=TINY_MACHINE, bin_width=64)
    wide = run_experiment(graph, "dpb", machine=TINY_MACHINE, bin_width=1024)
    # More bins -> more per-bin partial-line rounding -> >= traffic.
    assert narrow.requests >= wide.requests


def test_multi_iteration_measurement(graph):
    one = run_experiment(graph, "baseline", machine=TINY_MACHINE, num_iterations=1)
    two = run_experiment(graph, "baseline", machine=TINY_MACHINE, num_iterations=2)
    assert two.requests == pytest.approx(2 * one.requests, rel=0.05)
    assert two.instructions == pytest.approx(2 * one.instructions)
