"""Tests for the one-command reproduction driver."""

import os

import pytest

from repro.harness.reproduce import ARTIFACTS, build_parser, main


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.scale == 1.0
    assert args.output == "results"
    assert args.only is None


def test_parser_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--only", "fig99"])


def test_subset_run_writes_files(tmp_path, capsys):
    code = main(
        [
            "--scale",
            "0.03",
            "--output",
            str(tmp_path),
            "--only",
            "table1",
            "fig3",
        ]
    )
    assert code == 0
    assert (tmp_path / "table1_suite.txt").exists()
    assert (tmp_path / "fig3_vertex_traffic.txt").exists()
    # No other artifacts were produced.
    assert len(list(tmp_path.iterdir())) == 2
    # Progress goes through the repro logger to stderr, not print/stdout.
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "wrote" in captured.err and "done." in captured.err
    assert "repro.harness.reproduce" in captured.err


def test_fig7_quick(tmp_path, capsys):
    code = main(
        ["--quick", "--output", str(tmp_path), "--only", "fig7"]
    )
    assert code == 0
    text = (tmp_path / "fig7_scale_vertices.txt").read_text()
    assert "Baseline" in text and "DPB" in text


def test_artifact_registry_complete():
    assert len(ARTIFACTS) == 12
    assert set(ARTIFACTS) >= {"table1", "table3", "fig3", "fig11"}


def test_warm_cache_run_executes_zero_cells(tmp_path):
    import json

    cache = str(tmp_path / "cache")
    base = ["--scale", "0.03", "--only", "table2", "fig3", "--cache", cache, "-q", "-q"]
    cold_out, warm_out = tmp_path / "cold", tmp_path / "warm"

    cold_report = tmp_path / "cold.json"
    assert main([*base, "--output", str(cold_out), "--report", str(cold_report)]) == 0
    cold = json.loads(cold_report.read_text())
    assert cold["plan"]["executed"] == cold["plan"]["cells_unique"]
    assert cold["plan"]["cache_hits"] == 0

    warm_report = tmp_path / "warm.json"
    assert main([*base, "--output", str(warm_out), "--report", str(warm_report)]) == 0
    warm = json.loads(warm_report.read_text())
    # Every cell came from the cache; nothing was simulated again...
    assert warm["plan"]["executed"] == 0
    assert warm["plan"]["cache_hits"] == warm["plan"]["cells_unique"]
    # table2's baseline row is fig3's urand cell: dedup even in this pair.
    assert warm["plan"]["dedup_ratio"] > 1.0
    # ...and the artifacts are byte-identical to the cold run's.
    for name in ("table2_priorwork.txt", "fig3_vertex_traffic.txt"):
        assert (warm_out / name).read_bytes() == (cold_out / name).read_bytes()
