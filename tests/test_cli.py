"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_suite_command(capsys):
    code, out = run_cli(capsys, "suite", "--scale", "0.03")
    assert code == 0
    assert "urand" in out and "webrnd" in out
    assert "Table I" in out


def test_pagerank_command(capsys):
    code, out = run_cli(
        capsys, "pagerank", "--graph", "urand", "--scale", "0.03",
        "--method", "dpb", "--top", "3",
    )
    assert code == 0
    assert "method=dpb" in out
    assert "top 3 vertices" in out


def test_pagerank_auto(capsys):
    code, out = run_cli(capsys, "pagerank", "--scale", "0.03", "--method", "auto")
    assert code == 0
    assert "iterations=" in out


def test_measure_command(capsys):
    code, out = run_cli(
        capsys, "measure", "--graph", "web", "--scale", "0.05", "--method", "baseline"
    )
    assert code == 0
    assert "DRAM reads" in out
    assert "bottleneck" in out


def test_compare_command(capsys):
    code, out = run_cli(capsys, "compare", "--graph", "urand", "--scale", "0.05")
    assert code == 0
    for method in ("baseline", "cb", "pb", "dpb"):
        assert method in out
    assert "comm reduction" in out


def test_model_command(capsys):
    code, out = run_cli(capsys, "model", "--vertices", "131072", "--degree", "16")
    assert code == 0
    assert "predicted winner: dpb" in out


def test_model_command_small_graph_prefers_pull(capsys):
    code, out = run_cli(capsys, "model", "--vertices", "2048", "--degree", "16")
    assert code == 0
    assert "predicted winner: pull" in out


def test_rejects_unknown_graph():
    with pytest.raises(SystemExit):
        main(["pagerank", "--graph", "nonexistent"])


def test_rejects_unknown_method():
    with pytest.raises(SystemExit):
        main(["measure", "--method", "warp-speed"])


def test_plan_command_compiles_without_executing(capsys):
    code, out = run_cli(
        capsys, "plan", "--scale", "0.05", "--only", "table2", "fig3"
    )
    assert code == 0
    assert "compiled plan: 2 artifact(s)" in out
    assert "dedup ratio" in out
    assert "would execute (no --cache given)" in out


def test_plan_command_counts_cache_hits(capsys, tmp_path):
    from repro.harness.reproduce import main as reproduce_main

    cache = str(tmp_path / "cache")
    assert reproduce_main(
        ["--scale", "0.03", "--only", "table2", "--cache", cache,
         "--output", str(tmp_path / "out"), "-q", "-q"]
    ) == 0
    code, out = run_cli(
        capsys, "plan", "--scale", "0.03", "--only", "table2",
        "--cache", cache,
    )
    assert code == 0
    # Every one of table2's cells is in the cache: nothing would execute.
    assert "0 cell(s) would execute" in out


def test_plan_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        main(["plan", "--only", "fig99"])


def test_describe_command(capsys):
    code, out = run_cli(capsys, "describe", "--graph", "web", "--scale", "0.1")
    assert code == 0
    assert "estimated gather hit rate" in out
    assert "recommended method" in out


def test_describe_flags_low_locality(capsys):
    code, out = run_cli(capsys, "describe", "--graph", "webrnd", "--scale", "0.25")
    assert code == 0
    assert "low locality?" in out
    assert "yes" in out


def test_serve_command_answers_queries(capsys, tmp_path):
    cache = str(tmp_path / "serve-cache")
    report = str(tmp_path / "serve.json")
    code, out = run_cli(
        capsys, "serve", "--graph", "urand", "--scale", "0.03",
        "--seeds", "0,5", "--seeds", "17", "--seeds", "0,5",
        "--cache-dir", cache, "--json", report,
    )
    assert code == 0
    assert "seeds [0,5]" in out
    assert "3 request(s)" in out
    # The duplicate query either coalesced in-batch or hit the cache.
    assert "coalesced" in out
    from repro.obs import load_reports

    (loaded,) = load_reports(report)
    assert loaded.kind == "serve"
    assert loaded.serve["requests"] == 3
    assert loaded.serve["batches"] >= 1


def test_serve_command_warm_cache_hits(capsys, tmp_path):
    cache = str(tmp_path / "serve-cache")
    run_cli(capsys, "serve", "--scale", "0.03", "--seeds", "4", "--cache-dir", cache)
    code, out = run_cli(
        capsys, "serve", "--scale", "0.03", "--seeds", "4", "--cache-dir", cache
    )
    assert code == 0
    assert "via cache" in out
    assert "cache hit rate 1.00" in out


def test_serve_rejects_bad_seeds(capsys):
    code = main(["serve", "--scale", "0.03", "--seeds", "not-a-vertex"])
    assert code == 2


def test_serve_rejects_out_of_range_seeds(capsys):
    code = main(["serve", "--scale", "0.03", "--seeds", "99999999"])
    assert code == 2


def test_loadgen_command_reports_latency(capsys, tmp_path):
    out_path = str(tmp_path / "load.json")
    code, out = run_cli(
        capsys, "loadgen", "--graph", "urand", "--scale", "0.03",
        "--queries", "12", "--max-batch", "4", "--json", out_path,
        "--p99-bound", "60",
    )
    assert code == 0
    assert "p99 latency" in out
    assert "cache hit rate" in out
    import json

    with open(out_path) as handle:
        data = json.load(handle)
    assert data["num_queries"] == 12
    assert data["queries_per_sec"] > 0


def test_loadgen_p99_gate_fails_on_impossible_bound(capsys):
    code = main(
        ["loadgen", "--scale", "0.03", "--queries", "4", "--p99-bound", "1e-12"]
    )
    assert code == 1
