"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_suite_command(capsys):
    code, out = run_cli(capsys, "suite", "--scale", "0.03")
    assert code == 0
    assert "urand" in out and "webrnd" in out
    assert "Table I" in out


def test_pagerank_command(capsys):
    code, out = run_cli(
        capsys, "pagerank", "--graph", "urand", "--scale", "0.03",
        "--method", "dpb", "--top", "3",
    )
    assert code == 0
    assert "method=dpb" in out
    assert "top 3 vertices" in out


def test_pagerank_auto(capsys):
    code, out = run_cli(capsys, "pagerank", "--scale", "0.03", "--method", "auto")
    assert code == 0
    assert "iterations=" in out


def test_measure_command(capsys):
    code, out = run_cli(
        capsys, "measure", "--graph", "web", "--scale", "0.05", "--method", "baseline"
    )
    assert code == 0
    assert "DRAM reads" in out
    assert "bottleneck" in out


def test_compare_command(capsys):
    code, out = run_cli(capsys, "compare", "--graph", "urand", "--scale", "0.05")
    assert code == 0
    for method in ("baseline", "cb", "pb", "dpb"):
        assert method in out
    assert "comm reduction" in out


def test_model_command(capsys):
    code, out = run_cli(capsys, "model", "--vertices", "131072", "--degree", "16")
    assert code == 0
    assert "predicted winner: dpb" in out


def test_model_command_small_graph_prefers_pull(capsys):
    code, out = run_cli(capsys, "model", "--vertices", "2048", "--degree", "16")
    assert code == 0
    assert "predicted winner: pull" in out


def test_rejects_unknown_graph():
    with pytest.raises(SystemExit):
        main(["pagerank", "--graph", "nonexistent"])


def test_rejects_unknown_method():
    with pytest.raises(SystemExit):
        main(["measure", "--method", "warp-speed"])


def test_describe_command(capsys):
    code, out = run_cli(capsys, "describe", "--graph", "web", "--scale", "0.1")
    assert code == 0
    assert "estimated gather hit rate" in out
    assert "recommended method" in out


def test_describe_flags_low_locality(capsys):
    code, out = run_cli(capsys, "describe", "--graph", "webrnd", "--scale", "0.25")
    assert code == 0
    assert "low locality?" in out
    assert "yes" in out
