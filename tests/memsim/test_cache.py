"""Unit tests for the exact cache engines."""

import numpy as np
import pytest

from repro.memsim import (
    CacheConfig,
    FullyAssociativeLRU,
    MemCounters,
    SetAssociativeLRU,
    Stream,
    irregular_chunk,
    sequential_chunk,
    simulate,
)


def tiny_config(lines: int = 4) -> CacheConfig:
    return CacheConfig(capacity_bytes=64 * lines, line_bytes=64)


def test_config_geometry():
    cfg = CacheConfig(capacity_bytes=1 << 20, line_bytes=64)
    assert cfg.num_lines == 16384
    assert cfg.words_per_line == 16
    assert cfg.capacity_words == 262144


def test_config_validation():
    with pytest.raises(ValueError, match="power of two"):
        CacheConfig(capacity_bytes=1000)
    with pytest.raises(ValueError, match="line_bytes cannot exceed"):
        CacheConfig(capacity_bytes=64, line_bytes=128)
    with pytest.raises(ValueError, match="divide"):
        CacheConfig(capacity_bytes=256, line_bytes=64, ways=3)


def test_sequential_read_counts_compulsory_only():
    engine = FullyAssociativeLRU(tiny_config())
    counters = simulate([sequential_chunk(np.arange(10), stream=Stream.EDGE_ADJ)], engine)
    assert counters.total_reads == 10
    assert counters.total_writes == 0
    assert counters.reads[Stream.EDGE_ADJ] == 10


def test_sequential_write_allocates_and_writes_back():
    engine = FullyAssociativeLRU(tiny_config())
    counters = simulate([sequential_chunk(np.arange(10), write=True)], engine)
    assert counters.total_reads == 10  # write-allocate fills
    assert counters.total_writes == 10  # eventual write-backs


def test_streaming_store_skips_allocate_read():
    engine = FullyAssociativeLRU(tiny_config())
    counters = simulate(
        [sequential_chunk(np.arange(10), write=True, streaming_store=True)], engine
    )
    assert counters.total_reads == 0
    assert counters.total_writes == 10


def test_sequential_does_not_pollute_cache():
    engine = FullyAssociativeLRU(tiny_config(lines=2))
    counters = MemCounters()
    engine.process_chunk(irregular_chunk(np.array([100, 200])), counters)
    engine.process_chunk(sequential_chunk(np.arange(50)), counters)
    # The irregular lines must still be resident.
    engine.process_chunk(irregular_chunk(np.array([100, 200])), counters)
    assert counters.hits[Stream.OTHER] == 2


def test_lru_eviction_order():
    engine = FullyAssociativeLRU(tiny_config(lines=2))
    counters = MemCounters()
    engine.process_chunk(irregular_chunk(np.array([1, 2])), counters)
    engine.process_chunk(irregular_chunk(np.array([1])), counters)  # refresh 1
    engine.process_chunk(irregular_chunk(np.array([3])), counters)  # evicts 2
    engine.process_chunk(irregular_chunk(np.array([1])), counters)  # hit
    engine.process_chunk(irregular_chunk(np.array([2])), counters)  # miss
    assert counters.reads[Stream.OTHER] == 4  # 1, 2, 3, 2
    assert counters.hits[Stream.OTHER] == 2  # refresh of 1, then hit on 1


def test_dirty_eviction_writes_back():
    engine = FullyAssociativeLRU(tiny_config(lines=1))
    counters = MemCounters()
    engine.process_chunk(irregular_chunk(np.array([7]), write=True), counters)
    engine.process_chunk(irregular_chunk(np.array([8])), counters)  # evicts dirty 7
    assert counters.total_writes == 1
    engine.flush(counters)
    assert counters.total_writes == 1  # line 8 is clean


def test_flush_writes_back_dirty_lines():
    engine = FullyAssociativeLRU(tiny_config())
    counters = simulate(
        [irregular_chunk(np.array([1, 2, 3]), write=True)], engine, flush=True
    )
    assert counters.total_writes == 3


def test_write_hit_marks_dirty():
    engine = FullyAssociativeLRU(tiny_config(lines=2))
    counters = MemCounters()
    engine.process_chunk(irregular_chunk(np.array([5])), counters)  # clean fill
    engine.process_chunk(irregular_chunk(np.array([5]), write=True), counters)  # dirty it
    engine.flush(counters)
    assert counters.total_writes == 1


def test_capacity_one_thrashes():
    engine = FullyAssociativeLRU(tiny_config(lines=1))
    counters = simulate([irregular_chunk(np.array([1, 2, 1, 2]))], engine)
    assert counters.total_reads == 4
    assert counters.hits[Stream.OTHER] == 0


def test_infinite_cache_compulsory_misses_only():
    engine = FullyAssociativeLRU(tiny_config(lines=1024))
    lines = np.array([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5])
    counters = simulate([irregular_chunk(lines)], engine)
    assert counters.total_reads == len(set(lines.tolist()))


def test_consecutive_repeats_always_hit():
    engine = FullyAssociativeLRU(tiny_config(lines=1))
    counters = simulate([irregular_chunk(np.array([4, 4, 4, 4]))], engine)
    assert counters.total_reads == 1
    assert counters.hits[Stream.OTHER] == 3


def test_occupancy_bounded_by_capacity():
    engine = FullyAssociativeLRU(tiny_config(lines=4))
    counters = MemCounters()
    engine.process_chunk(irregular_chunk(np.arange(100)), counters)
    assert engine.occupancy == 4


def test_fully_associative_rejects_set_config():
    with pytest.raises(ValueError, match="ways"):
        FullyAssociativeLRU(CacheConfig(256, 64, ways=2))


def test_set_associative_conflict_misses():
    # 4 lines, 2 ways -> 2 sets; lines 0, 2, 4 all map to set 0.
    cfg = CacheConfig(capacity_bytes=256, line_bytes=64, ways=2)
    engine = SetAssociativeLRU(cfg)
    counters = simulate([irregular_chunk(np.array([0, 2, 4, 0]))], engine)
    # 0 evicted by 4 (set 0 holds 2 lines), so the final 0 misses again.
    assert counters.total_reads == 4


def test_set_associative_fully_assoc_when_one_set():
    cfg = CacheConfig(capacity_bytes=256, line_bytes=64)  # ways=None -> all ways
    engine = SetAssociativeLRU(cfg)
    assert engine.config.num_sets == 1
    counters = simulate([irregular_chunk(np.array([0, 4, 8, 0]))], engine)
    assert counters.total_reads == 3
    assert counters.hits[Stream.OTHER] == 1


def test_phase_attribution():
    engine = FullyAssociativeLRU(tiny_config())
    counters = simulate(
        [
            sequential_chunk(np.arange(5), phase="binning"),
            sequential_chunk(np.arange(100, 103), write=True,
                             streaming_store=True, phase="binning"),
            sequential_chunk(np.arange(200, 204), phase="accumulate"),
        ],
        engine,
    )
    assert counters.phase_reads["binning"] == 5
    assert counters.phase_writes["binning"] == 3
    assert counters.phase_reads["accumulate"] == 4
