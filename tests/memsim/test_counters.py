"""Unit tests for :mod:`repro.memsim.counters`."""

import pytest

from repro.memsim import MemCounters, Stream


def test_record_and_totals():
    c = MemCounters()
    c.record(Stream.EDGE_ADJ, reads=10, accesses=10)
    c.record(Stream.VERTEX_CONTRIB, reads=30, writes=5, accesses=40, hits=10)
    assert c.total_reads == 40
    assert c.total_writes == 5
    assert c.total_requests == 45


def test_category_split():
    c = MemCounters()
    c.record(Stream.EDGE_INDEX, reads=2)
    c.record(Stream.EDGE_ADJ, reads=8)
    c.record(Stream.VERTEX_SUMS, reads=30, writes=4)
    c.record(Stream.BIN_DATA, reads=5, writes=5)
    assert c.category_reads("edge") == 10
    assert c.category_reads("vertex") == 30
    assert c.category_reads("bin") == 5
    assert c.category_requests("vertex") == 34


def test_vertex_read_fraction():
    c = MemCounters()
    assert c.vertex_read_fraction() == 0.0
    c.record(Stream.EDGE_ADJ, reads=25)
    c.record(Stream.VERTEX_CONTRIB, reads=75)
    assert c.vertex_read_fraction() == pytest.approx(0.75)


def test_requests_per_edge():
    c = MemCounters()
    c.record(Stream.EDGE_ADJ, reads=50, writes=10)
    assert c.requests_per_edge(100) == pytest.approx(0.6)
    with pytest.raises(ValueError):
        c.requests_per_edge(0)


def test_merge_accumulates_everything():
    a = MemCounters()
    a.record(Stream.EDGE_ADJ, reads=1, writes=2, hits=3, accesses=4, phase="p")
    b = MemCounters()
    b.record(Stream.EDGE_ADJ, reads=10, writes=20, hits=30, accesses=40, phase="p")
    a.merge(b)
    assert a.reads[Stream.EDGE_ADJ] == 11
    assert a.writes[Stream.EDGE_ADJ] == 22
    assert a.hits[Stream.EDGE_ADJ] == 33
    assert a.accesses[Stream.EDGE_ADJ] == 44
    assert a.phase_reads["p"] == 11
    assert a.phase_writes["p"] == 22


def test_as_dict_keys():
    c = MemCounters()
    c.record(Stream.VERTEX_SUMS, reads=3)
    d = c.as_dict()
    assert d["reads"] == 3.0
    assert set(d) == {
        "reads",
        "writes",
        "requests",
        "edge_reads",
        "vertex_reads",
        "bin_reads",
        "vertex_read_fraction",
    }
