"""Unit tests for the vectorized direct-mapped engine."""

import numpy as np
import pytest

from repro.memsim import (
    CacheConfig,
    DirectMappedVectorized,
    Stream,
    irregular_chunk,
    sequential_chunk,
    simulate,
)


def make_engine(lines: int = 4) -> DirectMappedVectorized:
    return DirectMappedVectorized(CacheConfig(64 * lines, 64))


def test_rejects_multiway_config():
    with pytest.raises(ValueError, match="ways=1"):
        DirectMappedVectorized(CacheConfig(256, 64, ways=2))


def test_sequential_chunks_still_analytic():
    counters = simulate([sequential_chunk(np.arange(7))], make_engine())
    assert counters.total_reads == 7


def test_conflict_misses():
    # 4 sets: lines 0 and 4 conflict.
    counters = simulate([irregular_chunk(np.array([0, 4, 0, 4]))], make_engine(4))
    assert counters.total_reads == 4
    # Lines 0 and 1 do not conflict.
    counters = simulate([irregular_chunk(np.array([0, 1, 0, 1]))], make_engine(4))
    assert counters.total_reads == 2


def test_dirty_writeback_on_conflict_and_flush():
    engine = make_engine(4)
    counters = simulate(
        [
            irregular_chunk(np.array([0]), write=True),
            irregular_chunk(np.array([4])),  # evicts dirty 0
            irregular_chunk(np.array([8]), write=True),  # evicts clean 4, dirty 8
        ],
        engine,
    )
    assert counters.total_writes == 2  # 0 on eviction, 8 at flush


def test_stream_attribution():
    chunks = [
        irregular_chunk(np.array([0, 0]), stream=Stream.VERTEX_CONTRIB),
        irregular_chunk(np.array([1]), write=True, stream=Stream.VERTEX_SUMS),
    ]
    counters = simulate(chunks, make_engine(4))
    assert counters.reads[Stream.VERTEX_CONTRIB] == 1
    assert counters.hits[Stream.VERTEX_CONTRIB] == 1
    assert counters.reads[Stream.VERTEX_SUMS] == 1
    assert counters.writes[Stream.VERTEX_SUMS] == 1


def test_empty_trace():
    counters = simulate([], make_engine())
    assert counters.total_requests == 0


def test_empty_chunk():
    counters = simulate([irregular_chunk(np.array([], dtype=np.int64))], make_engine())
    assert counters.total_requests == 0


def test_cross_chunk_state_is_preserved():
    """A line loaded in chunk 1 must still hit in chunk 2."""
    counters = simulate(
        [irregular_chunk(np.array([3])), irregular_chunk(np.array([3]))],
        make_engine(4),
    )
    assert counters.total_reads == 1
