"""Unit tests for :mod:`repro.memsim.hierarchy`."""

import numpy as np
import pytest

from repro.memsim import (
    CacheConfig,
    FullyAssociativeLRU,
    L1Model,
    TwoLevel,
    irregular_chunk,
    sequential_chunk,
    simulate,
)


def test_l1_model_hit_rate_capacity_cliff():
    """A stream over few lines hits; over many lines it thrashes."""
    l1 = L1Model(CacheConfig(capacity_bytes=64 * 8, line_bytes=64))
    rng = np.random.default_rng(0)
    few = rng.integers(0, 4, size=2000)
    many = rng.integers(0, 1000, size=2000)
    few_stats = l1.analyze(few)
    many_stats = l1.analyze(many)
    assert few_stats["misses"] <= 4
    assert many_stats["misses"] > 1500
    assert few_stats["hits"] + few_stats["misses"] == 2000


def test_l1_model_empty_stream():
    l1 = L1Model()
    stats = l1.analyze(np.array([], dtype=np.int64))
    assert stats == {"accesses": 0, "hits": 0, "misses": 0}


def test_two_level_requires_smaller_l1():
    llc = FullyAssociativeLRU(CacheConfig(1024, 64))
    with pytest.raises(ValueError, match="smaller"):
        TwoLevel(CacheConfig(4096, 64), llc)


def test_two_level_absorbs_l1_hits():
    llc = FullyAssociativeLRU(CacheConfig(4096, 64))
    two = TwoLevel(CacheConfig(128, 64), llc)  # 2-line L1
    counters = simulate([irregular_chunk(np.array([5, 5, 5, 5]))], two)
    assert two.l1_hits == 3
    assert two.l1_misses == 1
    assert counters.total_reads == 1  # only the first access reached the LLC


def test_two_level_llc_catches_l1_capacity_misses():
    llc = FullyAssociativeLRU(CacheConfig(4096, 64))
    two = TwoLevel(CacheConfig(128, 64), llc)  # 2-line L1, 64-line LLC
    trace = [irregular_chunk(np.array([1, 2, 3, 1, 2, 3]))]
    counters = simulate(trace, two)
    # Each access misses the 2-line L1 (cycle of 3), but the second round
    # hits in the LLC: DRAM reads = 3 compulsory only.
    assert two.l1_misses == 6
    assert counters.total_reads == 3


def test_two_level_dirty_l1_eviction_reaches_llc_not_dram():
    llc = FullyAssociativeLRU(CacheConfig(4096, 64))
    two = TwoLevel(CacheConfig(128, 64), llc)
    trace = [
        irregular_chunk(np.array([1]), write=True),
        irregular_chunk(np.array([2, 3])),  # evicts dirty 1 into LLC
    ]
    counters = simulate(trace, two)
    # The dirty line ends up dirty in the LLC and is written back at flush.
    assert counters.total_writes == 1


def test_two_level_sequential_passthrough():
    llc = FullyAssociativeLRU(CacheConfig(4096, 64))
    two = TwoLevel(CacheConfig(128, 64), llc)
    counters = simulate([sequential_chunk(np.arange(10))], two)
    assert counters.total_reads == 10
    assert two.l1_misses == 10
