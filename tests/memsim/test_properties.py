"""Property-based tests for the cache engines (hypothesis).

The key oracle is a brute-force LRU simulator implemented with a plain
Python list — slow but obviously correct — against which the dict-based
fully-associative engine, the set-associative engine (with one set), the
vectorized direct-mapped engine (with capacity-one... i.e., where policies
coincide) and the reuse-distance analysis are all checked.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.memsim import (
    CacheConfig,
    DirectMappedVectorized,
    FullyAssociativeLRU,
    MemCounters,
    SetAssociativeLRU,
    StackDistanceLRU,
    Stream,
    irregular_chunk,
    misses_for_capacity,
    reuse_distance_histogram,
    simulate,
)


def brute_force_lru(lines: list[int], writes: list[bool], capacity: int):
    """Reference LRU: list ordered MRU-first, explicit dirty tracking."""
    order: list[int] = []
    dirty: dict[int, bool] = {}
    reads = 0
    writebacks = 0
    for line, is_write in zip(lines, writes):
        if line in dirty:
            order.remove(line)
            order.insert(0, line)
            dirty[line] = dirty[line] or is_write
        else:
            reads += 1
            order.insert(0, line)
            dirty[line] = is_write
            if len(order) > capacity:
                victim = order.pop()
                if dirty.pop(victim):
                    writebacks += 1
    flush_writebacks = sum(dirty.values())
    return reads, writebacks + flush_writebacks


trace_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=12), st.booleans()),
    min_size=0,
    max_size=200,
)
capacity_strategy = st.sampled_from([1, 2, 4, 8])


@given(trace=trace_strategy, capacity=capacity_strategy)
@settings(max_examples=200, deadline=None)
def test_fa_lru_matches_brute_force(trace, capacity):
    lines = [line for line, _ in trace]
    writes = [w for _, w in trace]
    expected_reads, expected_writes = brute_force_lru(lines, writes, capacity)

    engine = FullyAssociativeLRU(CacheConfig(64 * capacity, 64))
    chunks = [
        irregular_chunk(np.array([line], dtype=np.int64), write=w)
        for line, w in trace
    ]
    counters = simulate(chunks, engine, flush=True)
    assert counters.total_reads == expected_reads
    assert counters.total_writes == expected_writes


@given(trace=trace_strategy, capacity=capacity_strategy)
@settings(max_examples=100, deadline=None)
def test_single_set_associative_matches_fa(trace, capacity):
    lines = [line for line, _ in trace]
    writes = [w for _, w in trace]
    expected_reads, expected_writes = brute_force_lru(lines, writes, capacity)

    # ways == num_lines -> one set covering the whole cache.
    cfg = CacheConfig(64 * capacity, 64, ways=capacity)
    engine = SetAssociativeLRU(cfg)
    chunks = [
        irregular_chunk(np.array([line], dtype=np.int64), write=w)
        for line, w in trace
    ]
    counters = simulate(chunks, engine, flush=True)
    assert counters.total_reads == expected_reads
    assert counters.total_writes == expected_writes


@given(trace=trace_strategy)
@settings(max_examples=100, deadline=None)
def test_chunked_equals_per_access(trace):
    """Splitting a trace into chunks must not change the counts."""
    if not trace:
        return
    lines = np.array([line for line, _ in trace], dtype=np.int64)
    # All-reads version so a single chunk is homogeneous.
    engine_a = FullyAssociativeLRU(CacheConfig(256, 64))
    counters_a = simulate([irregular_chunk(lines)], engine_a)
    engine_b = FullyAssociativeLRU(CacheConfig(256, 64))
    per_access = [irregular_chunk(lines[i : i + 1]) for i in range(lines.size)]
    counters_b = simulate(per_access, engine_b)
    assert counters_a.total_reads == counters_b.total_reads
    assert counters_a.total_writes == counters_b.total_writes


@given(
    lines=st.lists(st.integers(min_value=0, max_value=20), max_size=150),
    capacity=capacity_strategy,
)
@settings(max_examples=150, deadline=None)
def test_reuse_distance_predicts_lru_misses(lines, capacity):
    """misses(C) from the reuse-distance histogram == the LRU engine's misses."""
    arr = np.asarray(lines, dtype=np.int64)
    hist = reuse_distance_histogram(arr)
    predicted = misses_for_capacity(hist, capacity)
    engine = FullyAssociativeLRU(CacheConfig(64 * capacity, 64))
    counters = simulate([irregular_chunk(arr)], engine)
    assert counters.total_reads == predicted


@given(lines=st.lists(st.integers(min_value=0, max_value=30), max_size=150))
@settings(max_examples=100, deadline=None)
def test_miss_count_monotone_in_capacity(lines):
    arr = np.asarray(lines, dtype=np.int64)
    hist = reuse_distance_histogram(arr)
    misses = [misses_for_capacity(hist, c) for c in (1, 2, 4, 8, 16)]
    assert all(a >= b for a, b in zip(misses, misses[1:]))
    # Largest capacity -> compulsory misses only.
    assert misses_for_capacity(hist, 1 << 20) == len(set(lines))


@given(
    trace=st.lists(
        st.tuples(st.integers(min_value=0, max_value=31), st.booleans()),
        max_size=200,
    )
)
@settings(max_examples=100, deadline=None)
def test_direct_mapped_vectorized_matches_scalar_direct_mapped(trace):
    """The vectorized engine equals a one-line-per-set scalar simulation."""
    num_sets = 4
    lines = [line for line, _ in trace]
    writes = [w for _, w in trace]

    # Scalar reference: each set holds one line.
    stored: dict[int, int] = {}
    stored_dirty: dict[int, bool] = {}
    reads = 0
    writebacks = 0
    for line, is_write in zip(lines, writes):
        s = line % num_sets
        if stored.get(s) == line:
            stored_dirty[s] = stored_dirty[s] or is_write
        else:
            if s in stored and stored_dirty[s]:
                writebacks += 1
            reads += 1
            stored[s] = line
            stored_dirty[s] = is_write
    writebacks += sum(stored_dirty.values())

    engine = DirectMappedVectorized(CacheConfig(64 * num_sets, 64))
    chunks = [
        irregular_chunk(np.array([line], dtype=np.int64), write=w)
        for line, w in trace
    ]
    counters = simulate(chunks, engine, flush=True)
    assert counters.total_reads == reads
    assert counters.total_writes == writebacks


@given(
    lines=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=100)
)
@settings(max_examples=100, deadline=None)
def test_hits_plus_misses_equals_accesses(lines):
    arr = np.asarray(lines, dtype=np.int64)
    engine = FullyAssociativeLRU(CacheConfig(256, 64))
    counters = simulate([irregular_chunk(arr)], engine)

    assert counters.hits[Stream.OTHER] + counters.reads[Stream.OTHER] == arr.size


# ----------------------------------------------------------------------
# stateful differential: StackDistanceLRU vs the per-access oracle with
# sync() interleaved at arbitrary points
# ----------------------------------------------------------------------
# A "program" interleaves gather chunks (reads of VERTEX_CONTRIB — the
# bin-reading side of propagation blocking), scatter chunks (writes of
# VERTEX_SUMS — the accumulate side) and sync points.  The batching
# engine buffers chunks and resolves them lazily; sync() must
# materialize counts *without* perturbing cache state, so the counters
# must equal the eager oracle's at every sync point and after the final
# flush, wherever the syncs land.
_chunk_op = st.tuples(
    st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=60),
    st.booleans(),  # True -> scatter (write sums), False -> gather (read contribs)
)
_program = st.lists(st.one_of(st.just("sync"), _chunk_op), max_size=30)


@given(program=_program, capacity=capacity_strategy)
@settings(max_examples=150, deadline=None)
def test_stackdist_matches_oracle_with_interleaved_sync(program, capacity):
    cfg = CacheConfig(64 * capacity, 64)
    oracle, batching = FullyAssociativeLRU(cfg), StackDistanceLRU(cfg)
    c_oracle, c_batching = MemCounters(), MemCounters()
    for op in program:
        if op == "sync":
            oracle.sync(c_oracle)
            batching.sync(c_batching)
            assert c_batching.as_dict() == c_oracle.as_dict()
        else:
            lines, is_scatter = op
            chunk = irregular_chunk(
                np.asarray(lines, dtype=np.int64),
                write=is_scatter,
                stream=Stream.VERTEX_SUMS if is_scatter else Stream.VERTEX_CONTRIB,
                phase="accumulate" if is_scatter else "binning",
            )
            oracle.process_chunk(chunk, c_oracle)
            batching.process_chunk(chunk, c_batching)
    oracle.flush(c_oracle)
    batching.flush(c_batching)
    assert c_batching.as_dict() == c_oracle.as_dict()


@given(program=_program, capacity=capacity_strategy)
@settings(max_examples=50, deadline=None)
def test_stackdist_sync_points_do_not_change_final_counts(program, capacity):
    """Dropping every sync from a program must not change the totals."""
    chunks = [op for op in program if op != "sync"]

    def run(ops):
        engine = StackDistanceLRU(CacheConfig(64 * capacity, 64))
        counters = MemCounters()
        for op in ops:
            if op == "sync":
                engine.sync(counters)
            else:
                lines, is_scatter = op
                engine.process_chunk(
                    irregular_chunk(
                        np.asarray(lines, dtype=np.int64),
                        write=is_scatter,
                        stream=Stream.VERTEX_SUMS
                        if is_scatter
                        else Stream.VERTEX_CONTRIB,
                    ),
                    counters,
                )
        engine.flush(counters)
        return counters.as_dict()

    assert run(program) == run(chunks)
