"""Tests for the tree-PLRU engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim import CacheConfig, FullyAssociativeLRU, irregular_chunk, simulate
from repro.memsim.plru import TreePLRUCache


def plru(lines_per_set_ways=(4, 2)):
    num_lines, ways = lines_per_set_ways
    return TreePLRUCache(CacheConfig(64 * num_lines, 64, ways=ways))


def test_requires_explicit_power_of_two_ways():
    with pytest.raises(ValueError, match="ways"):
        TreePLRUCache(CacheConfig(256, 64))
    with pytest.raises(ValueError, match="power of two"):
        TreePLRUCache(CacheConfig(64 * 12, 64, ways=3))


def test_hits_on_resident_lines():
    engine = plru((4, 2))
    counters = simulate([irregular_chunk(np.array([0, 0, 0]))], engine)
    assert counters.total_reads == 1


def test_dirty_eviction_writes_back():
    # 2 sets x 1... use 2 lines, 2 ways -> 1 set.
    engine = TreePLRUCache(CacheConfig(128, 64, ways=2))
    counters = simulate(
        [
            irregular_chunk(np.array([0]), write=True),
            irregular_chunk(np.array([1])),
            irregular_chunk(np.array([2])),  # evicts PLRU victim (0, dirty)
        ],
        engine,
    )
    assert counters.total_writes >= 1


def test_flush_resets_state():
    engine = plru((8, 2))
    counters = simulate([irregular_chunk(np.arange(8), write=True)], engine)
    assert counters.total_writes == 8
    assert engine.occupancy == 0


@given(
    trace=st.lists(
        st.tuples(st.integers(0, 7), st.booleans()), min_size=0, max_size=200
    )
)
@settings(max_examples=100, deadline=None)
def test_two_way_plru_equals_true_lru(trace):
    """With 2 ways per set the PLRU bit IS the LRU bit: exact agreement."""
    from repro.memsim import SetAssociativeLRU

    cfg = CacheConfig(64 * 4, 64, ways=2)  # 2 sets x 2 ways
    chunks = [
        irregular_chunk(np.array([line], dtype=np.int64), write=w)
        for line, w in trace
    ]
    a = simulate(list(chunks), TreePLRUCache(cfg))
    b = simulate(list(chunks), SetAssociativeLRU(cfg))
    assert a.total_reads == b.total_reads
    assert a.total_writes == b.total_writes


def test_plru_miss_rate_close_to_lru_statistically():
    """For a realistic gather stream, PLRU misses within a few % of LRU."""
    rng = np.random.default_rng(0)
    lines = rng.integers(0, 2048, size=200_000)
    cfg_plru = CacheConfig(32 * 1024, 64, ways=16)
    cfg_lru = CacheConfig(32 * 1024, 64)
    misses_plru = simulate(
        [irregular_chunk(lines)], TreePLRUCache(cfg_plru)
    ).total_reads
    misses_lru = simulate(
        [irregular_chunk(lines)], FullyAssociativeLRU(cfg_lru)
    ).total_reads
    assert misses_plru == pytest.approx(misses_lru, rel=0.06)


def test_hits_plus_misses_equals_accesses():
    rng = np.random.default_rng(1)
    lines = rng.integers(0, 64, size=5000)
    engine = plru((16, 4))
    counters = simulate([irregular_chunk(lines)], engine)
    from repro.memsim import Stream

    assert (
        counters.hits[Stream.OTHER] + counters.reads[Stream.OTHER] == lines.size
    )
