"""Unit tests for :mod:`repro.memsim.trace`."""

import numpy as np
import pytest

from repro.memsim import (
    AddressSpace,
    Stream,
    collapse_consecutive,
    irregular_chunk,
    sequential_chunk,
)


def test_chunk_coerces_lines_to_int64():
    chunk = irregular_chunk(np.array([1, 2, 3], dtype=np.int32))
    assert chunk.lines.dtype == np.int64
    assert chunk.num_accesses == 3


def test_chunk_rejects_2d_lines():
    with pytest.raises(ValueError, match="1-D"):
        irregular_chunk(np.zeros((2, 2)))


def test_streaming_store_requires_write():
    with pytest.raises(ValueError, match="streaming_store"):
        sequential_chunk(np.array([1]), write=False, streaming_store=True)
    chunk = sequential_chunk(np.array([1]), write=True, streaming_store=True)
    assert chunk.streaming_store


def test_collapse_consecutive():
    lines = np.array([5, 5, 5, 7, 7, 5, 9])
    collapsed, removed = collapse_consecutive(lines)
    np.testing.assert_array_equal(collapsed, [5, 7, 5, 9])
    assert removed == 3


def test_collapse_consecutive_trivial_cases():
    collapsed, removed = collapse_consecutive(np.array([], dtype=np.int64))
    assert collapsed.size == 0 and removed == 0
    collapsed, removed = collapse_consecutive(np.array([3]))
    assert collapsed.tolist() == [3] and removed == 0


def test_address_space_alignment_and_disjointness():
    space = AddressSpace(words_per_line=16)
    a = space.allocate("a", 10)  # rounds up to one line
    b = space.allocate("b", 33)
    assert a.base_word % 16 == 0
    assert b.base_word == 16  # a occupied exactly one line
    assert a.num_lines == 1
    assert b.num_lines == 3
    # Regions never share a line.
    assert set(a.sequential_lines()).isdisjoint(set(b.sequential_lines()))


def test_address_space_rejects_duplicate_names():
    space = AddressSpace()
    space.allocate("x", 4)
    with pytest.raises(ValueError, match="already allocated"):
        space.allocate("x", 4)


def test_region_line_of():
    space = AddressSpace(words_per_line=4)
    region = space.allocate("r", 16)
    np.testing.assert_array_equal(region.line_of(np.array([0, 3, 4, 15])), [0, 0, 1, 3])


def test_region_line_of_bounds_check():
    space = AddressSpace(words_per_line=4)
    region = space.allocate("r", 8)
    with pytest.raises(IndexError):
        region.line_of(np.array([8]))
    with pytest.raises(IndexError):
        region.line_of(np.array([-1]))


def test_region_sequential_lines_subrange():
    space = AddressSpace(words_per_line=4)
    space.allocate("pad", 4)
    region = space.allocate("r", 16)
    # Words 5..11 of the region span lines 1..2 (region-relative).
    lines = region.sequential_lines(start_word=5, num_words=7)
    np.testing.assert_array_equal(lines, [region.base_line + 1, region.base_line + 2])
    assert region.sequential_lines(0, 0).size == 0


def test_total_words_tracks_aligned_allocation():
    space = AddressSpace(words_per_line=16)
    space.allocate("a", 1)
    space.allocate("b", 17)
    assert space.total_words == 16 + 32
