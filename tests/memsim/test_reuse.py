"""Unit tests for reuse-distance analysis."""

import numpy as np
import pytest

from repro.memsim import (
    miss_ratio_curve,
    misses_for_capacity,
    reuse_distance_histogram,
)
from repro.memsim.reuse import COLD


def test_histogram_simple_sequence():
    # a b a b: the re-references each see 1 distinct line in between.
    hist = reuse_distance_histogram(np.array([0, 1, 0, 1]))
    assert hist[COLD] == 2
    assert hist[1] == 2


def test_histogram_immediate_reuse():
    hist = reuse_distance_histogram(np.array([7, 7, 7]))
    assert hist[COLD] == 1
    assert hist[0] == 2


def test_histogram_empty():
    assert reuse_distance_histogram(np.array([], dtype=np.int64)) == {}


def test_misses_for_capacity():
    hist = reuse_distance_histogram(np.array([0, 1, 2, 0, 1, 2]))
    # Distances are all 2: capacity 3 holds everything after warmup.
    assert misses_for_capacity(hist, 3) == 3
    # Capacity 2 thrashes: every access misses.
    assert misses_for_capacity(hist, 2) == 6
    with pytest.raises(ValueError):
        misses_for_capacity(hist, 0)


def test_miss_ratio_curve_monotone():
    rng = np.random.default_rng(0)
    lines = rng.integers(0, 64, size=2000)
    curve = miss_ratio_curve(lines, [1, 4, 16, 64, 256])
    values = list(curve.values())
    assert all(a >= b for a, b in zip(values, values[1:]))
    # A cache holding every line yields compulsory misses only.
    assert curve[256] == pytest.approx(len(set(lines.tolist())) / lines.size)


def test_miss_ratio_curve_empty_trace():
    assert miss_ratio_curve(np.array([], dtype=np.int64), [4]) == {4: 0.0}


def test_curve_matches_uniform_theory():
    """For uniform random accesses over N lines, LRU hit rate ~ C/N."""
    rng = np.random.default_rng(1)
    n_lines = 128
    lines = rng.integers(0, n_lines, size=50_000)
    curve = miss_ratio_curve(lines, [32, 64, 96])
    for capacity in (32, 64, 96):
        expected_miss = 1.0 - capacity / n_lines
        assert curve[capacity] == pytest.approx(expected_miss, abs=0.05)
