"""Differential tests: StackDistanceLRU vs the per-access oracle.

The vectorized engine's whole contract is *bit-identical* ``MemCounters``
to :class:`FullyAssociativeLRU` — per stream, per phase, including flush
write-backs.  Every test here builds a trace, replays it through both
engines and compares ``as_dict()`` exactly.  ``misses_for_capacity`` from
:mod:`repro.memsim.reuse` serves as a third, independently-derived oracle
for read-only single-stream traces.

The engine is adaptive (fits-in-cache analytic path, dense-block
vectorized path, sequential-replay fallback for mid-range windows), so the
randomized sweeps deliberately span capacities and address-space sizes
that hit all three regimes, and dedicated tests pin each regime.
"""

import numpy as np
import pytest

from repro.graphs import load_graph
from repro.kernels.pagerank import make_kernel
from repro.memsim import (
    CacheConfig,
    FullyAssociativeLRU,
    MemCounters,
    StackDistanceLRU,
    Stream,
    coalesce_chunks,
    irregular_chunk,
    misses_for_capacity,
    reuse_distance_histogram,
    sequential_chunk,
    simulate,
)
from repro.memsim.stackdist import _DEFAULT_BATCH


def config_for(lines: int) -> CacheConfig:
    return CacheConfig(capacity_bytes=64 * lines, line_bytes=64)


def both_engines(lines: int):
    cfg = config_for(lines)
    return FullyAssociativeLRU(cfg), StackDistanceLRU(cfg)


def assert_identical(trace, capacity_lines: int, *, flush: bool = True):
    """Replay ``trace`` through both engines and compare counters exactly."""
    oracle, vectorized = both_engines(capacity_lines)
    expected = simulate(trace, oracle, flush=flush)
    actual = simulate(trace, vectorized, flush=flush)
    assert actual.as_dict() == expected.as_dict()
    return actual


def random_trace(rng, *, space: int, num_chunks: int, max_len: int = 400):
    trace = []
    for _ in range(num_chunks):
        length = int(rng.integers(1, max_len))
        lines = rng.integers(0, space, size=length)
        trace.append(
            irregular_chunk(
                lines,
                write=bool(rng.integers(0, 2)),
                stream=rng.choice([Stream.VERTEX_CONTRIB, Stream.VERTEX_SUMS]),
                phase=str(rng.choice(["", "binning", "accumulate"])),
            )
        )
    return trace


# ----------------------------------------------------------------------
# randomized sweeps
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_randomized_traces_match_oracle(seed):
    rng = np.random.default_rng(seed)
    for _ in range(12):
        capacity = int(rng.choice([1, 2, 4, 8, 16, 64, 256]))
        space = int(rng.choice([2, 8, 64, 1024, 4096]))
        trace = random_trace(rng, space=space, num_chunks=int(rng.integers(1, 6)))
        assert_identical(trace, capacity)


@pytest.mark.parametrize("capacity", [1, 4, 16, 128, 512, 1024])
def test_thrash_and_fits_regimes(capacity):
    # space >> capacity exercises the dense-block vectorized path (and for
    # capacity > 512 the replay fallback); space <= capacity the fits path.
    rng = np.random.default_rng(capacity)
    for space in (max(2, capacity // 2), capacity * 8 + 1):
        lines = rng.integers(0, space, size=5000)
        trace = [irregular_chunk(lines, write=False, stream=Stream.VERTEX_CONTRIB)]
        assert_identical(trace, capacity)


def test_mixed_sequential_and_irregular_chunks():
    rng = np.random.default_rng(3)
    trace = [
        sequential_chunk(np.arange(50), stream=Stream.EDGE_ADJ),
        irregular_chunk(rng.integers(0, 300, 700), write=True, stream=Stream.VERTEX_SUMS),
        sequential_chunk(np.arange(20), write=True, streaming_store=True,
                         stream=Stream.BIN_DATA),
        irregular_chunk(rng.integers(0, 300, 700), stream=Stream.VERTEX_CONTRIB),
    ]
    assert_identical(trace, 32)


def test_writeback_charging_across_phases():
    # A line filled by phase A, dirtied by phase B, and evicted in phase C
    # must charge its write-back where the oracle charges it.
    trace = [
        irregular_chunk([0, 1, 2], phase="fill", stream=Stream.VERTEX_SUMS),
        irregular_chunk([0], write=True, phase="dirty", stream=Stream.VERTEX_SUMS),
        irregular_chunk([3, 4, 5, 6], phase="evict", stream=Stream.VERTEX_CONTRIB),
    ]
    assert_identical(trace, 4)


def test_flush_writebacks_match():
    trace = [irregular_chunk([0, 1, 2, 3], write=True, stream=Stream.VERTEX_SUMS)]
    with_flush = assert_identical(trace, 8, flush=True)
    without = assert_identical(trace, 8, flush=False)
    assert with_flush.total_writes > without.total_writes


def test_incremental_drains_match_single_drain():
    # Force many drains by setting a tiny batch: counters must be identical
    # to the default single-drain run (seeded-resident replay is exact).
    rng = np.random.default_rng(11)
    trace = [
        irregular_chunk(rng.integers(0, 500, 997), write=bool(w % 2),
                        stream=Stream.VERTEX_CONTRIB)
        for w in range(4)
    ]
    cfg = config_for(64)
    small = StackDistanceLRU(cfg, batch_accesses=37)
    big = StackDistanceLRU(cfg)
    assert simulate(trace, small).as_dict() == simulate(trace, big).as_dict()


def test_chunks_larger_than_batch_are_split():
    rng = np.random.default_rng(12)
    lines = rng.integers(0, 1 << 14, size=_DEFAULT_BATCH // 256 + 13)
    trace = [irregular_chunk(lines, stream=Stream.VERTEX_CONTRIB)]
    cfg = config_for(256)
    split = StackDistanceLRU(cfg, batch_accesses=1024)
    whole = FullyAssociativeLRU(cfg)
    assert simulate(trace, split).as_dict() == simulate(trace, whole).as_dict()


def test_sync_mid_trace_preserves_state():
    # simulate(flush=False) syncs pending batches without flushing; a
    # second trace must continue from the same cache state as the oracle.
    rng = np.random.default_rng(13)
    first = [irregular_chunk(rng.integers(0, 200, 500), write=True,
                             stream=Stream.VERTEX_SUMS)]
    second = [irregular_chunk(rng.integers(0, 200, 500),
                              stream=Stream.VERTEX_CONTRIB)]
    oracle, vectorized = both_engines(32)
    c1 = MemCounters()
    c2 = MemCounters()
    for trace in (first, second):
        simulate(trace, oracle, flush=False, counters=c1)
        simulate(trace, vectorized, flush=False, counters=c2)
    oracle.flush(c1)
    vectorized.flush(c2)
    assert c2.as_dict() == c1.as_dict()


def test_occupancy_after_sync():
    oracle, vectorized = both_engines(8)
    trace = [irregular_chunk([0, 1, 2, 3, 4], stream=Stream.VERTEX_CONTRIB)]
    simulate(trace, oracle, flush=False)
    simulate(trace, vectorized, flush=False)
    assert vectorized.occupancy == oracle.occupancy == 5


# ----------------------------------------------------------------------
# third oracle: Bennett-Kruskal stack distances from reuse.py
# ----------------------------------------------------------------------
@pytest.mark.parametrize("capacity", [1, 2, 8, 64, 256])
def test_reuse_histogram_is_third_oracle(capacity):
    rng = np.random.default_rng(capacity)
    lines = rng.integers(0, 700, size=3000)
    histogram = reuse_distance_histogram(lines)
    expected_misses = misses_for_capacity(histogram, capacity)

    trace = [irregular_chunk(lines, stream=Stream.VERTEX_CONTRIB)]
    for engine_cls in (FullyAssociativeLRU, StackDistanceLRU):
        counters = simulate(trace, engine_cls(config_for(capacity)))
        assert counters.total_reads == expected_misses


# ----------------------------------------------------------------------
# kernel-generated traces (the real workloads)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["baseline", "cb", "pb", "dpb"])
def test_kernel_traces_match_oracle(method):
    graph = load_graph("urand", scale=0.02, seed=5)
    kernel = make_kernel(graph, method)
    expected = kernel.measure(1, engine="flru")
    actual = kernel.measure(1, engine="stackdist")
    assert actual.as_dict() == expected.as_dict()


def test_kernel_trace_two_iterations_match():
    graph = load_graph("web", scale=0.02, seed=5)
    kernel = make_kernel(graph, "dpb")
    expected = kernel.measure(2, engine="flru")
    actual = kernel.measure(2, engine="stackdist")
    assert actual.as_dict() == expected.as_dict()


# ----------------------------------------------------------------------
# coalescing + registry
# ----------------------------------------------------------------------
def test_coalescing_preserves_counters():
    rng = np.random.default_rng(21)
    trace = [
        irregular_chunk(rng.integers(0, 100, 40), stream=Stream.VERTEX_CONTRIB)
        for _ in range(25)
    ]
    merged = coalesce_chunks(trace)
    assert len(merged) == 1
    for engine_cls in (FullyAssociativeLRU, StackDistanceLRU):
        a = simulate(trace, engine_cls(config_for(16)))
        b = simulate(merged, engine_cls(config_for(16)))
        assert a.as_dict() == b.as_dict()


def test_coalescing_respects_boundaries():
    trace = [
        irregular_chunk([1, 2], stream=Stream.VERTEX_SUMS, write=True),
        irregular_chunk([3, 4], stream=Stream.VERTEX_SUMS, write=False),
        sequential_chunk([5, 6], stream=Stream.EDGE_ADJ),
        irregular_chunk([7], stream=Stream.VERTEX_SUMS, phase="binning"),
        irregular_chunk([8], stream=Stream.VERTEX_SUMS, phase="accumulate"),
    ]
    assert len(coalesce_chunks(trace)) == 5


def test_registry_and_default():
    from repro.memsim import DEFAULT_ENGINE, ENGINES, make_engine

    assert DEFAULT_ENGINE == "stackdist"
    assert set(ENGINES) == {"stackdist", "flru", "set", "plru", "dmap", "compiled"}
    engine = make_engine("stackdist", config_for(16))
    assert isinstance(engine, StackDistanceLRU)
    with pytest.raises(ValueError, match="unknown engine"):
        make_engine("nope", config_for(16))


def test_rejects_set_associative_config():
    with pytest.raises(ValueError, match="ways=None"):
        StackDistanceLRU(CacheConfig(capacity_bytes=64 * 16, line_bytes=64, ways=4))
