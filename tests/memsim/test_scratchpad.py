"""Tests for the scratchpad (local-store) model."""

import pytest

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import make_kernel
from repro.kernels.bins import BinLayout
from repro.memsim.cache import WORD_BYTES
from repro.memsim.scratchpad import (
    DmaTransfer,
    plan_pb_scratchpad,
    pull_scratchpad_words,
)
from repro.models import SIMULATED_MACHINE


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(16384, 8, seed=141))


@pytest.fixture(scope="module")
def layout(graph):
    return BinLayout(graph, 2048)


def test_transfer_validation():
    with pytest.raises(ValueError, match="direction"):
        DmaTransfer("binning", "sideways", "x", 1)
    with pytest.raises(ValueError, match="words"):
        DmaTransfer("binning", "in", "x", 0)


def test_plan_volume_accounting(graph, layout):
    plan = plan_pb_scratchpad(graph, layout, SIMULATED_MACHINE)
    n, m = graph.num_vertices, graph.num_edges
    # In: scores + degrees + index + adjacency + (slices + bin data) + sums.
    expected_in = n + n + 2 * n + m + (n + 2 * m) + n
    assert plan.words_in == expected_in
    # Out: bin contributions + slices + scores.
    assert plan.words_out == m + n + n
    assert plan.total_words == plan.words_in + plan.words_out
    assert plan.num_transfers > 2 * layout.num_bins


def test_plan_volume_matches_cache_simulation(graph, layout):
    """Bulk DMA moves roughly what the cache hierarchy moves (the
    'no loss on scratchpads' claim) — same order, within ~50%."""
    plan = plan_pb_scratchpad(graph, layout, SIMULATED_MACHINE)
    kernel = make_kernel(graph, "dpb", SIMULATED_MACHINE, bin_width=layout.bin_width)
    counters = kernel.measure(1)
    cache_words = counters.total_requests * SIMULATED_MACHINE.words_per_line
    assert plan.total_words == pytest.approx(cache_words, rel=0.5)


def test_plan_fits_local_store(graph):
    # A slice wider than the local store is rejected.
    huge = BinLayout(graph, 16384)
    with pytest.raises(ValueError, match="local store"):
        plan_pb_scratchpad(graph, huge, SIMULATED_MACHINE)


def test_resident_footprint_bounded_by_slice(graph, layout):
    plan = plan_pb_scratchpad(graph, layout, SIMULATED_MACHINE)
    assert plan.max_resident_words() <= SIMULATED_MACHINE.cache_words


def test_pull_has_unschedulable_random_traffic(graph):
    words = pull_scratchpad_words(graph)
    assert words["random"] == graph.num_edges
    # On a low-locality graph the random component dominates the streams
    # once padded to any realistic DMA granularity.
    assert words["random"] * 4 > words["streamed"]  # even at 4-word DMA units


def test_pb_beats_pull_on_scratchpad(graph, layout):
    """The Section IX punchline: on a scratchpad machine the gap widens,
    because every random gather pays a full minimum-DMA unit."""
    plan = plan_pb_scratchpad(graph, layout, SIMULATED_MACHINE)
    pull = pull_scratchpad_words(graph)
    min_dma_words = SIMULATED_MACHINE.words_per_line  # a line-sized DMA unit
    pull_total = pull["streamed"] + pull["random"] * min_dma_words
    assert plan.total_words < 0.5 * pull_total
