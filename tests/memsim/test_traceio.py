"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import make_kernel
from repro.memsim import (
    CacheConfig,
    FullyAssociativeLRU,
    Stream,
    irregular_chunk,
    sequential_chunk,
    simulate,
)
from repro.memsim.traceio import load_trace, save_trace


def test_round_trip_preserves_all_fields(tmp_path):
    chunks = [
        sequential_chunk(np.arange(5), stream=Stream.EDGE_ADJ, phase="a"),
        irregular_chunk(np.array([9, 2, 9]), write=True,
                        stream=Stream.VERTEX_SUMS, phase="b"),
        sequential_chunk(np.arange(10, 13), write=True, streaming_store=True,
                         stream=Stream.BIN_DATA, phase="a"),
    ]
    path = tmp_path / "t.npz"
    count = save_trace(path, iter(chunks))
    assert count == 3
    loaded = load_trace(path)
    assert len(loaded) == 3
    for original, restored in zip(chunks, loaded):
        np.testing.assert_array_equal(original.lines, restored.lines)
        assert original.write == restored.write
        assert original.stream == restored.stream
        assert original.mode == restored.mode
        assert original.streaming_store == restored.streaming_store
        assert original.phase == restored.phase


def test_empty_trace_round_trip(tmp_path):
    path = tmp_path / "empty.npz"
    assert save_trace(path, []) == 0
    assert load_trace(path) == []


def test_version_check(tmp_path):
    path = tmp_path / "v.npz"
    np.savez(path, format_version=np.int64(99))
    with pytest.raises(ValueError, match="version"):
        load_trace(path)


def test_replay_gives_identical_measurement(tmp_path):
    """Saving a kernel trace and replaying it reproduces the counters —
    the property that makes golden-trace regression tests possible."""
    graph = build_csr(uniform_random_graph(2048, 6, seed=221))
    kernel = make_kernel(graph, "dpb")
    path = tmp_path / "dpb.npz"
    save_trace(path, kernel.trace(1))
    live = simulate(kernel.trace(1), FullyAssociativeLRU(kernel.machine.llc))
    replayed = simulate(load_trace(path), FullyAssociativeLRU(kernel.machine.llc))
    assert live.total_reads == replayed.total_reads
    assert live.total_writes == replayed.total_writes
    assert live.phase_reads == replayed.phase_reads


def test_replay_against_different_cache(tmp_path):
    """One saved trace, many cache configurations — without the kernel."""
    graph = build_csr(uniform_random_graph(4096, 6, seed=222))
    path = tmp_path / "base.npz"
    save_trace(path, make_kernel(graph, "baseline").trace(1))
    small = simulate(load_trace(path), FullyAssociativeLRU(CacheConfig(4 * 1024, 64)))
    large = simulate(load_trace(path), FullyAssociativeLRU(CacheConfig(64 * 1024, 64)))
    assert large.total_reads < small.total_reads
