"""Histogram/series metrics: bucketing, round-trips, registry scoping."""

import json

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    Series,
    bucket_label,
    collecting,
    current_registry,
)


@pytest.fixture(autouse=True)
def _clean_registry_state():
    assert current_registry() is None
    yield
    assert current_registry() is None


# ----------------------------------------------------------------------
# bucketing
# ----------------------------------------------------------------------
def test_bucket_label_small_values_are_exact():
    assert bucket_label(0) == "0"
    assert bucket_label(1) == "1"


def test_bucket_label_power_of_two_ranges():
    assert bucket_label(2) == "[2,4)"
    assert bucket_label(3) == "[2,4)"
    assert bucket_label(4) == "[4,8)"
    assert bucket_label(7) == "[4,8)"
    assert bucket_label(8) == "[8,16)"
    assert bucket_label(1023) == "[512,1024)"
    assert bucket_label(1024) == "[1024,2048)"


def test_bucket_label_rejects_negative():
    with pytest.raises(ValueError):
        bucket_label(-1)


# ----------------------------------------------------------------------
# histogram
# ----------------------------------------------------------------------
def test_histogram_observe_buckets_and_totals():
    h = Histogram()
    for value in (0, 1, 2, 3, 900):
        h.observe(value)
    h.observe(3, count=5)
    assert h.total() == 10
    assert h.as_dict() == {"0": 1, "1": 1, "[2,4)": 7, "[512,1024)": 1}


def test_histogram_free_form_labels_sort_after_buckets():
    h = Histogram()
    h.observe_label("cold", count=3)
    h.observe(2)
    h.observe(0)
    # Numeric buckets in magnitude order first, free-form labels last.
    assert list(h.as_dict()) == ["0", "[2,4)", "cold"]


def test_histogram_round_trip():
    h = Histogram()
    h.observe_label("cold", count=2)
    for value in (1, 5, 5, 70000):
        h.observe(value)
    data = h.as_dict()
    restored = Histogram.from_dict(json.loads(json.dumps(data)))
    assert restored.as_dict() == data
    assert restored.total() == h.total()


# ----------------------------------------------------------------------
# series
# ----------------------------------------------------------------------
def test_series_round_trip_preserves_order():
    s = Series()
    for value in (0.3, 0.21, 0.205):
        s.append(value)
    assert len(s) == 3
    restored = Series.from_dict(json.loads(json.dumps(s.as_dict())))
    assert restored.values() == [0.3, 0.21, 0.205]


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_get_or_create_identity():
    registry = MetricsRegistry()
    assert registry.histogram("a") is registry.histogram("a")
    assert registry.series("b") is registry.series("b")
    assert registry.histogram_names() == ["a"]
    assert registry.series_names() == ["b"]


def test_registry_round_trip():
    registry = MetricsRegistry()
    registry.histogram("reuse_distance/vertex_sums").observe(17)
    registry.histogram("reuse_distance/vertex_sums").observe_label("cold")
    registry.series("miss_rate/dpb").append(0.22)
    registry.series("miss_rate/dpb").append(0.21)
    data = registry.as_dict()
    assert set(data) == {"histograms", "series"}
    restored = MetricsRegistry.from_dict(json.loads(json.dumps(data)))
    assert restored.as_dict() == data


def test_collecting_scopes_nest_and_restore():
    with collecting() as outer:
        assert current_registry() is outer
        with collecting() as inner:
            assert current_registry() is inner
            inner.series("x").append(1.0)
        assert current_registry() is outer
    assert outer.series_names() == []
    assert inner.series("x").values() == [1.0]
