"""Model-drift records: delta derivation, round-trips, CLI flagging."""

import json

import pytest

from repro.cli import main
from repro.graphs import load_graph
from repro.harness import run_experiment
from repro.obs.drift import (
    DEFAULT_DRIFT_THRESHOLD,
    DriftRecord,
    DriftSummary,
)


# ----------------------------------------------------------------------
# record semantics
# ----------------------------------------------------------------------
def test_delta_is_relative_to_model():
    record = DriftRecord(name="total_reads", simulated=110.0, modelled=100.0)
    assert record.delta == pytest.approx(0.1)
    record = DriftRecord(name="total_reads", simulated=90.0, modelled=100.0)
    assert record.delta == pytest.approx(-0.1)


def test_delta_degenerate_model():
    assert DriftRecord(name="x", simulated=0.0, modelled=0.0).delta == 0.0
    assert DriftRecord(name="x", simulated=5.0, modelled=0.0).delta == 1.0
    assert DriftRecord(name="x", simulated=-5.0, modelled=0.0).delta == -1.0


def test_exceeds_compares_magnitude():
    record = DriftRecord(name="x", simulated=70.0, modelled=100.0)
    assert record.exceeds(0.25)
    assert not record.exceeds(0.35)


def test_record_round_trip_rederives_delta():
    record = DriftRecord(name="x", simulated=130.0, modelled=100.0)
    data = record.to_dict()
    assert data["delta"] == pytest.approx(0.3)
    # A tampered stored delta is ignored: delta is derived, not trusted.
    data["delta"] = 0.0
    restored = DriftRecord.from_dict(data)
    assert restored.delta == pytest.approx(0.3)


def test_summary_flags_worst_first():
    summary = DriftSummary(model="detailed_pb")
    summary.add("a", 100.0, 100.0)
    summary.add("b", 200.0, 100.0)
    summary.add("c", 60.0, 100.0)
    assert summary.max_abs_delta() == pytest.approx(1.0)
    flagged = summary.flagged(DEFAULT_DRIFT_THRESHOLD)
    assert [record.name for record in flagged] == ["b", "c"]
    restored = DriftSummary.from_dict(json.loads(json.dumps(summary.to_dict())))
    assert restored.model == "detailed_pb"
    assert [r.name for r in restored.records] == ["a", "b", "c"]
    assert restored.max_abs_delta() == pytest.approx(1.0)


# ----------------------------------------------------------------------
# drift evaluated on real measurements
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["baseline", "cb", "pb", "dpb"])
def test_clean_run_is_within_threshold(method):
    graph = load_graph("urand", scale=0.03, seed=42)
    m = run_experiment(graph, method, graph_name="urand")
    assert m.drift is not None
    assert m.drift.max_abs_delta() < DEFAULT_DRIFT_THRESHOLD
    assert not m.drift.flagged(DEFAULT_DRIFT_THRESHOLD)
    names = {record.name for record in m.drift.records}
    assert "total_reads" in names and "total_writes" in names
    assert any(name.startswith("reads/") for name in names)


def test_push_has_no_model_hence_no_drift():
    graph = load_graph("urand", scale=0.03, seed=42)
    m = run_experiment(graph, "push", graph_name="urand")
    assert m.drift is None


# ----------------------------------------------------------------------
# CLI: ``repro-pb report --drift``
# ----------------------------------------------------------------------
@pytest.fixture()
def drift_report(capsys, tmp_path):
    path = tmp_path / "run.json"
    code = main(
        [
            "measure", "--graph", "urand", "--scale", "0.03",
            "--method", "dpb", "--json", str(path),
        ]
    )
    capsys.readouterr()
    assert code == 0
    return path


def test_report_drift_clean_run_passes(capsys, drift_report):
    code = main(["report", "--drift", str(drift_report)])
    out = capsys.readouterr().out
    assert code == 0
    assert "no model drift" in out
    assert "DRIFT" not in out


def test_report_drift_flags_injected_divergence(capsys, drift_report, tmp_path):
    data = json.loads(drift_report.read_text())
    record = data["drift"]["records"][0]
    record["simulated"] = record["modelled"] * 2.0
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(data))
    code = main(["report", "--drift", str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "DRIFT" in out
    assert record["name"] in out


def test_report_drift_threshold_is_respected(capsys, drift_report, tmp_path):
    data = json.loads(drift_report.read_text())
    record = data["drift"]["records"][0]
    record["simulated"] = record["modelled"] * 1.5
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(data))
    code = main(["report", "--drift", str(bad), "--drift-threshold", "0.6"])
    capsys.readouterr()
    assert code == 0


def test_report_drift_warns_on_reports_without_drift(capsys, tmp_path):
    path = tmp_path / "pr.json"
    code = main(
        [
            "pagerank", "--graph", "urand", "--scale", "0.03",
            "--method", "dpb", "--json", str(path),
        ]
    )
    capsys.readouterr()
    assert code == 0
    code = main(["report", "--drift", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "no drift records" in out
