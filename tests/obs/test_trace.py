"""Event tracing: Chrome-trace export, counter tracks, disabled fast path."""

import json
import os
import threading

import pytest

from repro.graphs import load_graph
from repro.harness import run_experiment
from repro.obs import spans
from repro.obs.trace import (
    TRACE_PROCESS_NAME,
    TraceRecorder,
    counter_sample,
    current_tracer,
    tracing,
)
from repro.obs.spans import span

GOLDEN_SHAPE = os.path.join(os.path.dirname(__file__), "data", "golden_trace_shape.json")


@pytest.fixture(autouse=True)
def _clean_sink_state():
    """Never leak an installed event sink into (or out of) a test."""
    spans.set_event_sink(None)
    yield
    spans.set_event_sink(None)


def trace_shape(tracer):
    """Structural summary of a trace: event counts by path/track.

    Timestamps vary run to run; the *set* of recorded span paths and
    counter tracks (and how often each fires) is deterministic for a
    fixed graph and method, so that is what the golden file pins.
    """
    durations = {}
    tracks = {}
    for event in tracer.events():
        if event["ph"] == "X":
            path = event["args"]["path"]
            durations[path] = durations.get(path, 0) + 1
        elif event["ph"] == "C":
            tracks[event["name"]] = tracks.get(event["name"], 0) + 1
    return {"duration_events": durations, "counter_tracks": tracks}


# ----------------------------------------------------------------------
# recorder unit behaviour
# ----------------------------------------------------------------------
def test_tracing_scope_installs_and_restores():
    assert current_tracer() is None
    with tracing() as tracer:
        assert current_tracer() is tracer
        with tracing() as inner:
            assert current_tracer() is inner
        assert current_tracer() is tracer
    assert current_tracer() is None


def test_span_records_duration_event_with_path():
    with tracing() as tracer:
        with span("outer"):
            with span("inner"):
                pass
    events = tracer.events()
    assert [e["name"] for e in events] == ["outer", "inner"] or [
        e["name"] for e in events
    ] == ["inner", "outer"]
    by_name = {e["name"]: e for e in events}
    assert by_name["inner"]["args"]["path"] == "outer/inner"
    assert by_name["inner"]["ph"] == "X"
    assert by_name["inner"]["dur"] >= 0
    # Inner completes first, so its end-relative ts ordering holds:
    assert by_name["outer"]["ts"] <= by_name["inner"]["ts"]


def test_counter_sample_records_track():
    with tracing() as tracer:
        counter_sample("residual", {"residual": 0.5})
        counter_sample("residual", {"residual": 0.25})
        counter_sample("other", {"a": 1, "b": 2})
    assert tracer.counter_tracks() == ["other", "residual"]
    residuals = [e for e in tracer.events() if e["name"] == "residual"]
    assert [e["args"]["residual"] for e in residuals] == [0.5, 0.25]
    assert all(e["ph"] == "C" for e in residuals)


def test_counter_sample_is_noop_when_disabled():
    counter_sample("ghost", {"x": 1.0})  # must not raise
    assert current_tracer() is None


def test_threads_get_stable_distinct_tids():
    recorder = TraceRecorder()

    def work():
        with tracing(recorder):
            pass  # tracing() is process-global; just record from the thread
        recorder.record_span("from_thread", 0.0, 1.0)

    recorder.record_span("main", 0.0, 1.0)
    t = threading.Thread(target=work)
    t.start()
    t.join()
    recorder.record_span("main_again", 0.0, 1.0)
    tids = {e["name"]: e["tid"] for e in recorder.events()}
    assert tids["main"] == tids["main_again"] == 0
    assert tids["from_thread"] == 1


def test_chrome_export_structure(tmp_path):
    with tracing() as tracer:
        with span("work"):
            pass
        counter_sample("track", {"v": 1.0})
    path = tmp_path / "trace.json"
    tracer.save(str(path))
    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    # Metadata first: the process-name announcement.
    assert events[0]["ph"] == "M"
    assert events[0]["args"]["name"] == TRACE_PROCESS_NAME
    for event in events[1:]:
        assert event["ph"] in ("X", "C")
        assert isinstance(event["ts"], (int, float))
        assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert isinstance(event["dur"], (int, float))


# ----------------------------------------------------------------------
# the disabled fast path (acceptance: no-op span unchanged)
# ----------------------------------------------------------------------
def test_disabled_fast_path_preserved_after_tracing():
    """With no recorder and no tracer, span() is the shared no-op singleton."""
    before = span("a")
    assert before is span("b")  # no allocation when fully disabled
    with tracing():
        assert span("c") is not before  # live span while tracing
    after = span("d")
    assert after is before  # fast path restored after the scope exits


# ----------------------------------------------------------------------
# golden shape: a full instrumented measure run
# ----------------------------------------------------------------------
def golden_run():
    graph = load_graph("urand", scale=0.03, seed=42)
    with tracing() as tracer:
        run_experiment(graph, "dpb", graph_name="urand")
    return tracer


def test_golden_trace_shape():
    """The span paths and counter tracks of a fixed run are pinned.

    Regenerate after deliberate instrumentation changes with::

        PYTHONPATH=src python -m tests.obs.regen_golden_trace
    """
    shape = trace_shape(golden_run())
    with open(GOLDEN_SHAPE) as handle:
        golden = json.load(handle)
    assert shape == golden


def test_golden_run_has_required_tracks():
    tracer = golden_run()
    tracks = tracer.counter_tracks()
    # The tentpole's required counter sources: per-stream DRAM transfers,
    # the running miss rate, and the model-drift deltas.
    assert "miss_rate" in tracks
    assert "model_drift[dpb]" in tracks
    assert any(track.startswith("dram[") for track in tracks)
    assert len(tracks) >= 3
