"""CLI report emission (``--json`` / ``--report-dir``) and ``repro-pb report``."""

import json
import re

import pytest

from repro.cli import main
from repro.obs import SCHEMA_VERSION, RunReport, load_reports


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


@pytest.fixture()
def measure_report(capsys, tmp_path):
    path = tmp_path / "out.json"
    code, out = run_cli(
        capsys,
        "measure", "--graph", "urand", "--scale", "0.03", "--method", "dpb",
        "--json", str(path),
    )
    assert code == 0
    return path, out


def test_measure_json_matches_text_table(measure_report):
    path, out = measure_report
    report = RunReport.load(str(path))
    assert report.schema_version == SCHEMA_VERSION
    assert report.kind == "measure"
    assert report.config.method == "dpb"
    # The text table and the report must show the same counters.
    reads = int(re.search(r"DRAM reads \(lines\)\s+([\d,]+)", out).group(1).replace(",", ""))
    writes = int(re.search(r"DRAM writes \(lines\)\s+([\d,]+)", out).group(1).replace(",", ""))
    assert report.counters.total_reads == reads
    assert report.counters.total_writes == writes
    # ... and totals must equal the per-stream sums (the PCM invariant).
    assert sum(report.counters.reads_by_stream.values()) == reads
    assert sum(report.counters.writes_by_stream.values()) == writes
    # Wall-clock spans were recorded during the run.
    assert any(path.startswith("experiment") for path in report.wall_spans)


def test_report_self_diff_is_clean(capsys, measure_report):
    path, _ = measure_report
    code, out = run_cli(capsys, "report", str(path), str(path))
    assert code == 0
    assert "no regressions" in out
    assert "REGRESSED" not in out


def test_report_detects_regression(capsys, measure_report, tmp_path):
    path, _ = measure_report
    data = json.loads(path.read_text())
    data["counters"]["total_requests"] = int(data["counters"]["total_requests"] * 1.3)
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(data))
    code, out = run_cli(capsys, "report", str(path), str(bad))
    assert code == 1
    assert "REGRESSED" in out
    assert "total_requests" in out


def test_report_threshold_is_respected(capsys, measure_report, tmp_path):
    path, _ = measure_report
    data = json.loads(path.read_text())
    data["counters"]["total_requests"] = int(data["counters"]["total_requests"] * 1.3)
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(data))
    code, _ = run_cli(capsys, "report", str(path), str(bad), "--threshold", "0.5")
    assert code == 0


def test_compare_emits_report_set_and_per_run_files(capsys, tmp_path):
    set_path = tmp_path / "cmp.json"
    report_dir = tmp_path / "reports"
    code, _ = run_cli(
        capsys,
        "compare", "--graph", "urand", "--scale", "0.03",
        "--json", str(set_path), "--report-dir", str(report_dir),
    )
    assert code == 0
    document = json.loads(set_path.read_text())
    assert document["kind"] == "report_set"
    reports = load_reports(str(set_path))
    assert [r.config.method for r in reports] == ["baseline", "cb", "pb", "dpb"]
    names = sorted(p.name for p in report_dir.iterdir())
    assert names == [
        "measure_urand_baseline.json",
        "measure_urand_cb.json",
        "measure_urand_dpb.json",
        "measure_urand_pb.json",
    ]
    # Self-diff of a whole set is clean too.
    code, out = run_cli(capsys, "report", str(set_path), str(set_path))
    assert code == 0
    assert "no regressions" in out


def test_pagerank_json_records_convergence(capsys, tmp_path):
    path = tmp_path / "pr.json"
    code, _ = run_cli(
        capsys,
        "pagerank", "--graph", "urand", "--scale", "0.03", "--method", "dpb",
        "--json", str(path),
    )
    assert code == 0
    report = RunReport.load(str(path))
    assert report.kind == "pagerank"
    assert report.counters is None and report.time is None
    conv = report.convergence
    assert conv is not None and conv.converged
    assert len(conv.deltas) == conv.iterations == report.config.num_iterations
    # Deltas shrink monotonically for this well-behaved graph.
    assert all(a > b for a, b in zip(conv.deltas, conv.deltas[1:]))
    # Executable kernel phases were span-recorded once per iteration,
    # nested under the solver's per-iteration span.
    assert report.wall_spans["iteration[dpb]/binning"]["count"] == conv.iterations


def test_measure_trace_emits_chrome_trace(capsys, tmp_path):
    """Acceptance: ``measure --strategy dpb --trace t.json`` works."""
    trace_path = tmp_path / "t.json"
    code, out = run_cli(
        capsys,
        "measure", "--graph", "urand", "--scale", "0.03",
        "--strategy", "dpb",  # --strategy is an alias for --method
        "--trace", str(trace_path),
    )
    assert code == 0
    assert f"[trace written to {trace_path}]" in out
    doc = json.loads(trace_path.read_text())
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    # Kernel-phase duration events are present...
    paths = {e["args"]["path"] for e in events if e.get("ph") == "X"}
    assert any("phase[binning]" in p for p in paths)
    assert any("phase[accumulate]" in p for p in paths)
    # ... along with at least three counter tracks, including the
    # solver-side residual track from the bundled solver pass.
    tracks = {e["name"] for e in events if e.get("ph") == "C"}
    assert len(tracks) >= 3
    assert "residual" in tracks and "miss_rate" in tracks


def test_measure_metrics_embedded_in_report(capsys, tmp_path):
    path = tmp_path / "out.json"
    code, _ = run_cli(
        capsys,
        "measure", "--graph", "urand", "--scale", "0.03", "--method", "dpb",
        "--metrics", "--json", str(path),
    )
    assert code == 0
    report = RunReport.load(str(path))
    assert report.metrics is not None
    histograms = report.metrics["histograms"]
    series = report.metrics["series"]
    assert "bin_occupancy/dpb" in histograms
    assert any(name.startswith("reuse_distance/") for name in histograms)
    assert "miss_rate/dpb" in series and len(series["miss_rate/dpb"]) == 1


def test_measure_without_metrics_leaves_field_null(measure_report):
    path, _ = measure_report
    report = RunReport.load(str(path))
    assert report.metrics is None


def test_measure_iterations_grows_series(capsys, tmp_path):
    path = tmp_path / "out.json"
    code, _ = run_cli(
        capsys,
        "measure", "--graph", "urand", "--scale", "0.03", "--method", "dpb",
        "--iterations", "3", "--metrics", "--json", str(path),
    )
    assert code == 0
    report = RunReport.load(str(path))
    assert len(report.metrics["series"]["miss_rate/dpb"]) == 3


def test_compare_trace_spans_all_methods(capsys, tmp_path):
    trace_path = tmp_path / "cmp_trace.json"
    code, _ = run_cli(
        capsys,
        "compare", "--graph", "urand", "--scale", "0.03",
        "--trace", str(trace_path),
    )
    assert code == 0
    doc = json.loads(trace_path.read_text())
    tracks = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "C"}
    # One shared timeline carries every strategy's drift track.
    for method in ("baseline", "cb", "pb", "dpb"):
        assert f"model_drift[{method}]" in tracks


def test_verbosity_flags_parse_on_subcommands():
    from repro.cli import build_parser

    args = build_parser().parse_args(["measure", "-vv"])
    assert args.verbose == 2 and args.quiet == 0
    args = build_parser().parse_args(["report", "-q", "a.json", "b.json"])
    assert args.quiet == 1
    assert args.reports == ["a.json", "b.json"]


def test_report_warns_on_disjoint_files(capsys, tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    code, _ = run_cli(
        capsys,
        "measure", "--graph", "urand", "--scale", "0.03", "--method", "baseline",
        "--json", str(a),
    )
    assert code == 0
    code, _ = run_cli(
        capsys,
        "measure", "--graph", "urand", "--scale", "0.03", "--method", "pb",
        "--json", str(b),
    )
    assert code == 0
    code, out = run_cli(capsys, "report", str(a), str(b))
    assert code == 0  # nothing comparable, but nothing regressed
    assert "no comparable runs" in out
