"""Regenerate ``data/golden_trace_shape.json`` after instrumentation changes.

Usage::

    PYTHONPATH=src python -m tests.obs.regen_golden_trace
"""

import json

from tests.obs.test_trace import GOLDEN_SHAPE, golden_run, trace_shape


def main() -> None:
    shape = trace_shape(golden_run())
    with open(GOLDEN_SHAPE, "w") as handle:
        json.dump(shape, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_SHAPE}")


if __name__ == "__main__":
    main()
