"""Golden-file schema pin.

``data/golden_report.json`` is a committed report for a fixed
configuration (urand, scale 0.03, seed 42, dpb, flru).  This test
regenerates that exact run and compares structurally: any change to the
report shape, field names, integer counter values, or the schema version
shows up here and forces a deliberate schema-version bump (see
``docs/metrics_schema.md``).
"""

import json
import math
from pathlib import Path

import pytest

from repro.graphs import load_graph
from repro.harness import run_experiment
from repro.obs import SCHEMA_VERSION, RunReport, report_from_measurement

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_report.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def regenerated():
    graph = load_graph("urand", scale=0.03, seed=42)
    m = run_experiment(graph, "dpb", graph_name="urand", engine="flru")
    report = report_from_measurement(m, scale=0.03, seed=42, engine="flru")
    return report.to_dict()


def _assert_same_structure(expected, actual, path="$"):
    assert type(expected) is type(actual), f"{path}: type changed"
    if isinstance(expected, dict):
        assert sorted(expected) == sorted(actual), f"{path}: key set changed"
        for key in expected:
            _assert_same_structure(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=1e-9), f"{path}: value drifted"
    else:
        # ints, strings, bools, None — must match exactly
        assert expected == actual, f"{path}: value changed"


def test_golden_pins_current_schema_version(golden):
    assert golden["schema_version"] == SCHEMA_VERSION


def test_golden_report_still_loads(golden):
    report = RunReport.from_dict(golden)
    assert report.to_dict() == golden


def test_regenerated_report_matches_golden(golden, regenerated):
    _assert_same_structure(golden, regenerated)


def test_golden_counters_are_internally_consistent(golden):
    c = golden["counters"]
    assert sum(c["reads_by_stream"].values()) == c["total_reads"]
    assert sum(c["writes_by_stream"].values()) == c["total_writes"]
    assert sum(c["reads_by_phase"].values()) == c["total_reads"]
    assert sum(c["writes_by_phase"].values()) == c["total_writes"]
    assert c["total_requests"] == c["total_reads"] + c["total_writes"]
    assert math.isclose(
        c["requests_per_edge"],
        c["total_requests"] / golden["graph"]["num_edges"],
    )
