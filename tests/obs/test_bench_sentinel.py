"""Tests for the bench-regression sentinel (repro.bench.sentinel).

Pins the gate semantics the CI job relies on: two-sided tolerance on
deterministic metrics, wall-clock metrics reported but never gated,
``--noise`` overrides with last-match-wins (able to both loosen and
*gate* a pattern), loader rejection of malformed baselines, and the
exit-code contract of ``repro-pb bench --check``.  The in-process
re-measure path is covered by the acceptance run, not here — these
tests work on synthetic documents so they stay fast.
"""

from __future__ import annotations

import argparse
import json
import os

import pytest

from repro.bench import (
    BENCH_GLOB,
    WALL_CLOCK_PATTERNS,
    compare_documents,
    load_bench_documents,
    parse_noise_overrides,
    run_bench_command,
)
from repro.obs.report import SCHEMA_VERSION


def _doc(bench, metrics, schema=SCHEMA_VERSION, kind="bench"):
    return {
        "schema_version": schema,
        "kind": kind,
        "bench": bench,
        "metrics": metrics,
        "meta": {"source": "test"},
    }


def _write(directory, document, name=None):
    name = name or document.get("bench", "anon")
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(document, handle)
    return path


def _args(**overrides):
    defaults = dict(
        check=True, baseline_dir=None, current=None,
        tolerance=0.01, noise=[], json=None,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


# ----------------------------------------------------------------------
# comparison semantics
# ----------------------------------------------------------------------
def test_identical_documents_have_no_regressions():
    base = {"fig": _doc("fig", {"DPB/urand": 1.74, "PB/kron": 2.0})}
    comparison = compare_documents(base, base)
    assert comparison.ok
    assert {c.status for c in comparison.checks} == {"ok"}


def test_movement_beyond_tolerance_is_a_regression_both_ways():
    base = {"fig": _doc("fig", {"up": 1.0, "down": 1.0, "steady": 1.0})}
    cur = {"fig": _doc("fig", {"up": 1.05, "down": 0.95, "steady": 1.005})}
    comparison = compare_documents(base, cur, tolerance=0.01)
    status = {c.metric: c.status for c in comparison.checks}
    # Two-sided: an unexplained improvement is also a behavior change.
    assert status == {"up": "regression", "down": "regression", "steady": "ok"}
    assert not comparison.ok
    assert sorted(c.key for c in comparison.regressions) == ["fig/down", "fig/up"]


def test_wall_clock_metrics_are_reported_but_never_gated():
    base = {"plan_dedup": _doc("plan_dedup", {"wall_seconds/cold": 4.0,
                                              "dedup_ratio": 3.5})}
    cur = {"plan_dedup": _doc("plan_dedup", {"wall_seconds/cold": 40.0,
                                             "dedup_ratio": 3.5})}
    comparison = compare_documents(base, cur)
    status = {c.metric: c.status for c in comparison.checks}
    assert status["wall_seconds/cold"] == "ungated"  # 10x slower, still green
    assert status["dedup_ratio"] == "ok"
    assert comparison.ok


def test_entirely_host_timing_benches_are_ungated():
    base = {"engine_speed": _doc("engine_speed", {"flru/urand": 1e6})}
    cur = {"engine_speed": _doc("engine_speed", {"flru/urand": 5e5})}
    comparison = compare_documents(base, cur)
    assert all(c.status == "ungated" for c in comparison.checks)
    assert comparison.ok


def test_zero_baseline_still_admits_a_tolerance_band():
    base = {"b": _doc("b", {"faults": 0.0})}
    assert compare_documents(base, {"b": _doc("b", {"faults": 0.0})}).ok
    assert not compare_documents(base, {"b": _doc("b", {"faults": 1.0})}).ok


def test_gated_metric_appearing_or_vanishing_is_a_regression():
    base = {"b": _doc("b", {"kept": 1.0, "gone": 2.0})}
    cur = {"b": _doc("b", {"kept": 1.0, "born": 3.0})}
    comparison = compare_documents(base, cur)
    status = {c.metric: c.status for c in comparison.checks}
    assert status == {"kept": "ok", "gone": "regression", "born": "regression"}


def test_ungated_metric_appearing_or_vanishing_is_only_noted():
    base = {"b": _doc("b", {"wall_seconds/cold": 4.0})}
    cur = {"b": _doc("b", {"wall_seconds/warm": 1.0})}
    comparison = compare_documents(base, cur)
    status = {c.metric: c.status for c in comparison.checks}
    assert status == {"wall_seconds/cold": "missing", "wall_seconds/warm": "new"}
    assert comparison.ok


def test_unpaired_benches_land_in_the_leftover_lists():
    base = {"old": _doc("old", {"m": 1.0})}
    cur = {"new": _doc("new", {"m": 1.0})}
    comparison = compare_documents(base, cur)
    assert comparison.baseline_only == ["old"]
    assert comparison.current_only == ["new"]
    assert comparison.ok  # unpaired benches are warnings, not regressions
    assert comparison.checks == []


def test_comparison_as_dict_is_a_schema_versioned_artifact():
    base = {"b": _doc("b", {"m": 1.0})}
    record = compare_documents(base, base).as_dict()
    assert record["schema_version"] == SCHEMA_VERSION
    assert record["kind"] == "bench_comparison"
    assert record["ok"] is True
    assert record["regressions"] == []
    assert record["checks"][0]["relative_delta"] == 0.0


# ----------------------------------------------------------------------
# noise overrides
# ----------------------------------------------------------------------
def test_noise_override_loosens_a_gated_metric():
    base = {"b": _doc("b", {"ratio": 1.0})}
    cur = {"b": _doc("b", {"ratio": 1.1})}
    assert not compare_documents(base, cur).ok
    loosened = compare_documents(
        base, cur, overrides=parse_noise_overrides(["b/ratio=0.2"])
    )
    assert loosened.ok
    assert loosened.checks[0].tolerance == 0.2


def test_noise_override_can_gate_a_wall_clock_metric():
    base = {"b": _doc("b", {"wall_seconds/cold": 4.0})}
    cur = {"b": _doc("b", {"wall_seconds/cold": 40.0})}
    assert compare_documents(base, cur).ok  # ungated by default
    gated = compare_documents(
        base, cur, overrides=parse_noise_overrides(["b/wall_seconds/*=0.5"])
    )
    assert not gated.ok  # the override takes precedence over the wall list


def test_noise_overrides_last_match_wins():
    base = {"b": _doc("b", {"ratio": 1.0})}
    cur = {"b": _doc("b", {"ratio": 1.1})}
    comparison = compare_documents(
        base, cur,
        overrides=parse_noise_overrides(["b/*=0.001", "b/ratio=0.5"]),
    )
    assert comparison.ok
    assert comparison.checks[0].tolerance == 0.5


def test_parse_noise_overrides_rejects_malformed_entries():
    assert parse_noise_overrides(["a/b=0.1", "c=2"]) == [("a/b", 0.1), ("c", 2.0)]
    for bad in ["no-equals", "=0.1", "a/b=", "a/b=nope", "a/b=-0.1", "a/b=inf"]:
        with pytest.raises(ValueError):
            parse_noise_overrides([bad])


def test_wall_clock_patterns_cover_the_committed_baselines():
    # The patterns must keep matching the metric names the benches emit.
    for key in [
        "plan_dedup/wall_seconds/cold",
        "fig4_speedup/accesses_per_sec/DPB",
        "engine_speed/flru/urand",
        "kernel_speed/gather/kron",
    ]:
        import fnmatch

        assert any(fnmatch.fnmatch(key, p) for p in WALL_CLOCK_PATTERNS), key


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def test_load_bench_documents_reads_every_bench_file(tmp_path):
    _write(tmp_path, _doc("alpha", {"m": 1.0}))
    _write(tmp_path, _doc("beta", {"m": 2.0}))
    (tmp_path / "not_a_bench.json").write_text("{}")
    documents = load_bench_documents(str(tmp_path))
    assert sorted(documents) == ["alpha", "beta"]
    assert documents["beta"]["metrics"]["m"] == 2.0


def test_load_bench_documents_rejects_bad_documents(tmp_path):
    _write(tmp_path, _doc("bad", {"m": 1.0}, kind="report"))
    with pytest.raises(ValueError, match="not a bench document"):
        load_bench_documents(str(tmp_path))
    os.remove(tmp_path / "BENCH_bad.json")

    _write(tmp_path, _doc("old", {"m": 1.0}, schema="99.0"))
    with pytest.raises(ValueError, match="unsupported bench schema"):
        load_bench_documents(str(tmp_path))
    os.remove(tmp_path / "BENCH_old.json")

    _write(tmp_path, _doc("", {"m": 1.0}), name="anonymous")
    with pytest.raises(ValueError, match="without a bench name"):
        load_bench_documents(str(tmp_path))


def test_emitted_bench_documents_load_and_carry_provenance(tmp_path, monkeypatch):
    import sys

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))
    from benchmarks.emit_bench import BENCH_DIR_ENV, emit_bench

    monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path))
    path = emit_bench("round_trip", {"m": 1.5})
    assert os.path.dirname(path) == str(tmp_path)  # env redirect honoured
    documents = load_bench_documents(str(tmp_path))
    provenance = documents["round_trip"]["meta"]["provenance"]
    assert provenance["schema_version"] == SCHEMA_VERSION
    assert "timestamp_utc" in provenance
    assert "git_commit" in provenance
    assert "default_engine" in provenance


# ----------------------------------------------------------------------
# CLI exit codes (repro-pb bench)
# ----------------------------------------------------------------------
@pytest.fixture
def bench_dirs(tmp_path):
    baseline = tmp_path / "baseline"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    _write(baseline, _doc("plan_dedup", {"dedup_ratio": 3.5,
                                         "wall_seconds/cold": 4.0}))
    _write(current, _doc("plan_dedup", {"dedup_ratio": 3.5,
                                        "wall_seconds/cold": 8.0}))
    return str(baseline), str(current)


def test_bench_check_passes_on_an_unchanged_tree(bench_dirs, capsys):
    baseline, current = bench_dirs
    code = run_bench_command(_args(baseline_dir=baseline, current=current))
    assert code == 0
    assert "no bench regressions" in capsys.readouterr().out


def test_bench_check_fails_nonzero_naming_the_metric(bench_dirs, capsys):
    baseline, current = bench_dirs
    _write(current, _doc("plan_dedup", {"dedup_ratio": 3.85,  # +10%
                                        "wall_seconds/cold": 4.0}))
    code = run_bench_command(_args(baseline_dir=baseline, current=current))
    assert code == 1
    out = capsys.readouterr().out
    assert "plan_dedup/dedup_ratio" in out
    assert "beyond tolerance" in out


def test_bench_without_check_reports_but_exits_zero(bench_dirs, capsys):
    baseline, current = bench_dirs
    _write(current, _doc("plan_dedup", {"dedup_ratio": 3.85,
                                        "wall_seconds/cold": 4.0}))
    code = run_bench_command(
        _args(check=False, baseline_dir=baseline, current=current)
    )
    assert code == 0  # report-only mode never reddens a build
    assert "beyond tolerance" in capsys.readouterr().out


def test_bench_noise_override_rescues_a_regression(bench_dirs):
    baseline, current = bench_dirs
    _write(current, _doc("plan_dedup", {"dedup_ratio": 3.85,
                                        "wall_seconds/cold": 4.0}))
    code = run_bench_command(
        _args(baseline_dir=baseline, current=current,
              noise=["plan_dedup/dedup_ratio=0.2"])
    )
    assert code == 0


def test_bench_writes_the_comparison_artifact(bench_dirs, tmp_path):
    baseline, current = bench_dirs
    artifact = str(tmp_path / "comparison.json")
    code = run_bench_command(
        _args(baseline_dir=baseline, current=current, json=artifact)
    )
    assert code == 0
    with open(artifact) as handle:
        record = json.load(handle)
    assert record["kind"] == "bench_comparison"
    assert record["ok"] is True


def test_bench_usage_errors_exit_two(bench_dirs, tmp_path, capsys):
    baseline, current = bench_dirs
    assert run_bench_command(
        _args(baseline_dir=baseline, current=current, noise=["garbage"])
    ) == 2
    empty = tmp_path / "empty"
    empty.mkdir()
    assert run_bench_command(
        _args(baseline_dir=str(empty), current=current)
    ) == 2
    out = capsys.readouterr().out
    assert BENCH_GLOB in out
