"""Unit tests for the fleet event bus (repro.obs.events).

The contracts pinned here are the ones the sweep engine and the report
writers lean on: the disabled fast path is a true no-op, the collector
drops (and counts) incompatible schema majors, subscriber exceptions
never propagate into ingestion, clock offsets map worker timestamps onto
the parent clock, ``fleet_summary`` keeps the ``executed + cached +
resumed == total`` identity under fingerprint dedup, and
``merge_into_trace`` renders per-worker tracks (spans, instants,
resource counters) into one Chrome trace.
"""

from __future__ import annotations

import queue
import time

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    EVENTS_SCHEMA_VERSION,
    Event,
    EventBus,
    _message,
    collecting,
    current_bus,
    drain_worker_buffers,
    emit,
    gail_payload,
    in_worker,
    resource_snapshot,
    uninstall,
)
from repro.obs.trace import TraceRecorder


# ----------------------------------------------------------------------
# emission and collection
# ----------------------------------------------------------------------
def test_parent_emit_collects_in_arrival_order():
    bus = EventBus()
    bus.emit("plan_started", cell="fig3", cells_unique=4)
    bus.emit("cell_started", cell="a", fingerprint="fp-a", attempt=0)
    bus.emit("cell_finished", cell="a", fingerprint="fp-a", attempt=0, seconds=0.5)
    events = bus.events()
    assert [e.kind for e in events] == [
        "plan_started",
        "cell_started",
        "cell_finished",
    ]
    assert [e.index for e in events] == [0, 1, 2]
    assert events[1].fingerprint == "fp-a"
    assert events[2].payload["seconds"] == 0.5
    # Parent events need no clock correction.
    assert all(e.adjusted_ts == e.ts for e in events)
    assert bus.workers() == ["main"]


def test_event_as_dict_round_trips_fields():
    bus = EventBus()
    bus.emit("cell_retried", cell="a", fingerprint="fp", attempt=1, backoff=0.25)
    record = bus.events()[0].as_dict()
    assert record["kind"] == "cell_retried"
    assert record["cell"] == "a"
    assert record["fingerprint"] == "fp"
    assert record["attempt"] == 1
    assert record["payload"] == {"backoff": 0.25}


def test_emit_without_bus_or_channel_is_a_noop():
    uninstall()
    assert current_bus() is None
    assert not in_worker()
    emit("cell_finished", cell="nobody", seconds=1.0)  # must not raise
    assert drain_worker_buffers() == {}


def test_collecting_scopes_and_restores_the_bus():
    outer = EventBus()
    with collecting(outer) as bus:
        assert bus is outer
        assert current_bus() is outer
        with collecting() as inner:
            assert current_bus() is inner
            emit("cache_hit", cell="x", fingerprint="fp-x")
        assert current_bus() is outer
        emit("cache_hit", cell="y", fingerprint="fp-y")
    assert current_bus() is None
    assert [e.cell for e in outer.events()] == ["y"]


# ----------------------------------------------------------------------
# schema versioning and subscriber isolation
# ----------------------------------------------------------------------
def test_incompatible_schema_major_is_dropped_and_counted():
    bus = EventBus()
    good = _message("cell_started", "pid100", 0, "a", "fp", 0, {})
    bad = dict(good, v="2.0")
    bus._ingest(good)
    bus._ingest(bad)
    bus._ingest(dict(good, v=""))
    assert len(bus.events()) == 1
    assert bus.dropped() == 2
    assert bus.fleet_summary()["events"]["dropped"] == 2


def test_same_major_different_minor_is_accepted():
    bus = EventBus()
    major = EVENTS_SCHEMA_VERSION.split(".", 1)[0]
    message = _message("cell_started", "pid100", 0, "a", "fp", 0, {})
    message["v"] = f"{major}.99"
    bus._ingest(message)
    assert len(bus.events()) == 1
    assert bus.dropped() == 0


def test_raising_subscriber_does_not_break_ingestion_or_peers():
    bus = EventBus()
    seen = []

    def bad(event):
        raise RuntimeError("subscriber bug")

    bus.subscribe(bad)
    bus.subscribe(seen.append)
    bus.emit("cell_started", cell="a")
    bus.emit("cell_finished", cell="a", seconds=0.1)
    assert [e.kind for e in seen] == ["cell_started", "cell_finished"]
    assert len(bus.events()) == 2


# ----------------------------------------------------------------------
# pump and clock offsets
# ----------------------------------------------------------------------
def test_pump_drains_worker_queue_messages():
    bus = EventBus()
    bus._queue = queue.Queue()  # stand-in for the manager proxy
    bus._queue.put(_message("worker_spawned", "pid41", 0, None, None, None, {}))
    bus._queue.put(_message("cell_started", "pid41", 1, "a", "fp", 0, {}))
    assert bus.pump() == 2
    assert bus.pump() == 0
    assert [e.kind for e in bus.events()] == ["worker_spawned", "cell_started"]
    assert "pid41" in bus.workers()


def test_worker_clock_offset_is_minimum_observed_gap():
    bus = EventBus()
    now = time.perf_counter()
    # A worker whose clock reads 5 seconds behind the parent's: every
    # message arrives with a ~5s gap, and the smallest gap is the offset.
    first = _message("cell_started", "w", 0, "a", "fp", 0, {})
    first["ts"] = now - 5.0
    second = _message("cell_finished", "w", 1, "a", "fp", 0, {"seconds": 0.1})
    second["ts"] = now - 4.9
    bus._ingest(first)
    bus._ingest(second)
    offset = bus.offset("w")
    assert offset == pytest.approx(4.9, abs=0.5)
    events = bus.events()
    # Adjusted timestamps land near the parent clock and preserve order.
    assert events[0].adjusted_ts == pytest.approx(events[0].ts + offset)
    assert events[0].adjusted_ts <= events[1].adjusted_ts
    assert bus.offset("main") == 0.0


# ----------------------------------------------------------------------
# fleet summary
# ----------------------------------------------------------------------
def test_fleet_summary_accounting_identity_with_dedup():
    bus = EventBus()
    bus.emit("worker_spawned", pid=41)
    bus.emit("cell_finished", cell="a", fingerprint="fp-a", seconds=1.0)
    # Late duplicate finish for the same fingerprint (post-timeout replay)
    # must not double count.
    bus.emit("cell_finished", cell="a", fingerprint="fp-a", seconds=1.0)
    bus.emit("cache_hit", cell="b", fingerprint="fp-b")
    bus.emit("checkpoint_resumed", cell="c", fingerprint="fp-c", seconds=0.2)
    fleet = bus.fleet_summary()
    cells = fleet["cells"]
    assert cells["executed"] == 1
    assert cells["cached"] == 1
    assert cells["resumed"] == 1
    assert cells["total"] == cells["executed"] + cells["cached"] + cells["resumed"]
    assert cells["failed"] == 0
    assert fleet["workers"]["spawned"] == 1
    assert fleet["schema_version"] == EVENTS_SCHEMA_VERSION
    assert fleet["events"]["by_kind"]["cell_finished"] == 2


def test_fleet_summary_failed_excludes_eventual_successes():
    bus = EventBus()
    bus.emit(
        "cell_faulted", cell="a", fingerprint="fp-a",
        injected=True, permanent=False,
    )
    bus.emit("cell_retried", cell="a", fingerprint="fp-a", attempt=0)
    bus.emit("cell_finished", cell="a", fingerprint="fp-a", seconds=0.3)
    bus.emit(
        "cell_timeout", cell="b", fingerprint="fp-b",
        injected=False, permanent=True,
    )
    cells = bus.fleet_summary()["cells"]
    assert cells["executed"] == 1
    assert cells["failed"] == 1  # only b: a eventually succeeded
    assert cells["retries"] == 1
    assert cells["faults"] == 2
    assert cells["injected_faults"] == 1
    assert cells["timeouts"] == 1


def test_fleet_summary_folds_gail_and_resources():
    bus = EventBus()
    ratios = {
        "requests_per_edge": 0.5,
        "reads_per_edge": 1.5,
        "writes_per_edge": 0.25,
        "instructions_per_edge": 8.0,
        "seconds_per_edge": 1e-9,
    }
    message = _message(
        "cell_finished", "pid41", 0, "dpb/urand", "fp", 0,
        {"seconds": 1.0, "gail": ratios,
         "resources": {"rss_bytes": 2048.0, "cpu_seconds": 0.7}},
    )
    bus._ingest(message)
    fleet = bus.fleet_summary()
    assert fleet["gail"]["dpb/urand"] == ratios
    worker = fleet["per_worker"]["pid41"]
    assert worker["peak_rss_bytes"] == 2048.0
    assert worker["cpu_seconds"] == 0.7
    assert worker["busy_seconds"] == 1.0
    assert fleet["workers"]["peak_rss_bytes"] == 2048.0
    assert fleet["cell_seconds"]["total"] == 1.0


# ----------------------------------------------------------------------
# trace merge
# ----------------------------------------------------------------------
def test_merge_into_trace_builds_per_worker_tracks():
    bus = EventBus()
    now = time.perf_counter()
    message = _message(
        "cell_finished", "pid4242", 0, "dpb/urand", "fp", 0,
        {
            "seconds": 0.5,
            "spans": [("sweep/cell[dpb]", now - 0.5, now)],
            "counters": [("mem", now - 0.2, {"reads": 10.0})],
            "resources": {"rss_bytes": float(1 << 20), "cpu_seconds": 0.1},
        },
    )
    bus._ingest(message)
    bus._ingest(
        _message("resource_sample", "pid4242", 1, None, None, None,
                 {"resources": {"rss_bytes": float(2 << 20), "cpu_seconds": 0.2}})
    )
    bus.emit("cache_hit", cell="other", fingerprint="fp2", seconds=0.1)
    tracer = TraceRecorder()
    bus.merge_into_trace(tracer)
    chrome = tracer.to_chrome()
    events = chrome["traceEvents"]

    metadata = {
        e["pid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert metadata[4242] == "worker pid4242"  # pid parsed from the name
    assert 0 in metadata  # the parent track is always named

    spans = [e for e in events if e["ph"] == "X" and e["pid"] == 4242]
    assert len(spans) == 1
    assert spans[0]["name"] == "cell[dpb]"  # leaf of the span path
    assert spans[0]["dur"] == pytest.approx(0.5e6, rel=0.01)  # microseconds

    counters = [e for e in events if e["ph"] == "C" and e["pid"] == 4242]
    assert {e["name"] for e in counters} == {"mem", "worker_resources"}

    instants = [e for e in events if e["ph"] == "i"]
    assert {(e["pid"], e["name"]) for e in instants} == {
        (4242, "cell_finished"),
        (0, "cache_hit"),
    }
    # The bulky payload keys never leak into instant args.
    finished = next(e for e in instants if e["name"] == "cell_finished")
    assert set(finished["args"]) & {"spans", "counters", "resources"} == set()


def test_merge_into_trace_synthesizes_pids_for_unnamed_workers():
    bus = EventBus()
    bus._ingest(_message("cell_started", "oddball", 0, "a", "fp", 0, {}))
    tracer = TraceRecorder()
    bus.merge_into_trace(tracer)
    pids = {
        e["pid"]
        for e in tracer.to_chrome()["traceEvents"]
        if e["ph"] == "M" and e["args"]["name"] == "worker oddball"
    }
    assert len(pids) == 1
    assert pids.pop() >= 1 << 20  # cannot collide with a real OS pid


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def test_resource_snapshot_reports_plausible_numbers():
    snapshot = resource_snapshot()
    assert set(snapshot) == {"rss_bytes", "cpu_seconds"}
    assert snapshot["rss_bytes"] > 0  # this test process is using memory
    assert snapshot["cpu_seconds"] >= 0


def test_gail_payload_duck_types_on_measurement_like_results():
    class Ratios:
        requests_per_edge = 0.5
        reads_per_edge = 1.5
        writes_per_edge = 0.25
        instructions_per_edge = 8.0
        seconds_per_edge = 1e-9

    class MeasurementLike:
        def gail(self):
            return Ratios()

    payload = gail_payload(MeasurementLike())
    assert payload == {
        "requests_per_edge": 0.5,
        "reads_per_edge": 1.5,
        "writes_per_edge": 0.25,
        "instructions_per_edge": 8.0,
        "seconds_per_edge": 1e-9,
    }
    assert gail_payload(42) is None
    assert gail_payload(object()) is None

    class Broken:
        def gail(self):
            raise RuntimeError("no counters attached")

    assert gail_payload(Broken()) is None


def test_event_kinds_cover_the_documented_lifecycle():
    assert set(EVENT_KINDS) >= {
        "plan_started", "cell_started", "cell_finished", "cell_retried",
        "cell_timeout", "cell_faulted", "cache_hit", "checkpoint_resumed",
        "worker_spawned", "worker_replaced", "resource_sample",
    }
