"""Tests for the live fleet progress renderer (repro.obs.progress).

The CI-safety satellite of ISSUE 7 lives here: ``plain`` mode must emit
no ANSI escapes and no carriage returns, ``auto`` must degrade to plain
off a TTY, and ``-q`` must silence progress entirely.  The accounting
tests mirror the bus's fingerprint-dedup rules so the rendered counters
can never disagree with the report's ``fleet`` section.
"""

from __future__ import annotations

import io

import pytest

from repro.obs.events import Event, EventBus
from repro.obs.progress import ProgressRenderer, attach_progress, resolve_mode


def _event(kind, *, cell=None, fingerprint=None, worker="main", attempt=None,
           **payload):
    return Event(
        kind=kind, ts=0.0, worker=worker, seq=0, cell=cell,
        fingerprint=fingerprint, attempt=attempt, payload=payload,
    )


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _renderer(**kwargs):
    kwargs.setdefault("mode", "plain")
    kwargs.setdefault("stream", io.StringIO())
    kwargs.setdefault("clock", _FakeClock())
    return ProgressRenderer(**kwargs)


# ----------------------------------------------------------------------
# mode resolution (the -q / non-TTY satellite)
# ----------------------------------------------------------------------
def test_resolve_mode_quiet_always_wins():
    assert resolve_mode("auto", io.StringIO(), quiet=True) == "off"
    assert resolve_mode("live", io.StringIO(), quiet=True) == "off"


def test_resolve_mode_auto_picks_plain_off_a_tty():
    assert resolve_mode("auto", io.StringIO()) == "plain"


def test_resolve_mode_auto_picks_live_on_a_tty():
    class Tty(io.StringIO):
        def isatty(self):
            return True

    assert resolve_mode("auto", Tty()) == "live"


def test_resolve_mode_survives_streams_without_isatty():
    class Odd:
        def isatty(self):
            raise OSError("not a real stream")

    assert resolve_mode("auto", Odd()) == "plain"


def test_resolve_mode_passes_explicit_modes_through():
    assert resolve_mode("plain", io.StringIO()) == "plain"
    assert resolve_mode("off", io.StringIO()) == "off"


def test_attach_progress_returns_none_when_off():
    bus = EventBus()
    assert attach_progress(bus, mode="auto", stream=io.StringIO(), quiet=True) is None
    assert attach_progress(bus, mode="off", stream=io.StringIO()) is None


def test_attach_progress_subscribes_a_renderer():
    bus = EventBus()
    stream = io.StringIO()
    renderer = attach_progress(bus, mode="plain", stream=stream)
    assert renderer is not None
    bus.emit("plan_started", cell="fig3", cells_unique=2)
    bus.emit("cell_finished", cell="a", fingerprint="fp-a", seconds=0.1)
    assert renderer.done == 1
    assert "cells 1/2" in stream.getvalue()


def test_unknown_mode_is_rejected():
    with pytest.raises(ValueError):
        ProgressRenderer(mode="fancy")


# ----------------------------------------------------------------------
# output hygiene
# ----------------------------------------------------------------------
def test_plain_output_has_no_ansi_or_carriage_returns():
    stream = io.StringIO()
    renderer = _renderer(stream=stream)
    renderer.handle(_event("plan_started", cells_unique=3))
    renderer.handle(_event("cell_started", cell="a", worker="pid1"))
    renderer.handle(_event("cell_finished", cell="a", fingerprint="fp-a"))
    renderer.handle(_event("cell_retried", cell="b", fingerprint="fp-b"))
    renderer.finish()
    output = stream.getvalue()
    assert "\x1b" not in output
    assert "\r" not in output
    assert output.endswith("\n")
    assert "cells 1/3" in output


def test_live_output_redraws_in_place_and_releases_the_line():
    stream = io.StringIO()
    renderer = _renderer(mode="live", stream=stream, throttle=0.0)
    renderer.handle(_event("plan_started", cells_unique=2))
    renderer.handle(_event("cell_finished", cell="a", fingerprint="fp-a"))
    renderer.finish()
    output = stream.getvalue()
    assert "\r\x1b[2K" in output  # in-place redraw
    assert output.endswith("\n")  # finish releases the open line


def test_plain_mode_throttles_but_forces_milestones():
    clock = _FakeClock()
    stream = io.StringIO()
    renderer = _renderer(stream=stream, clock=clock, throttle=1.0)
    # Milestones render regardless of the throttle window...
    renderer.handle(_event("cell_finished", cell="a", fingerprint="a"))
    renderer.handle(_event("cell_finished", cell="b", fingerprint="b"))
    assert stream.getvalue().count("\n") == 2
    # ...non-milestone churn inside the window does not.
    renderer.handle(_event("cell_started", cell="c", worker="pid1"))
    assert stream.getvalue().count("\n") == 2
    clock.now += 2.0
    renderer.handle(_event("cell_started", cell="d", worker="pid2"))
    assert stream.getvalue().count("\n") == 3


def test_broken_stream_silences_rendering_instead_of_raising():
    class Broken(io.StringIO):
        def write(self, text):
            raise OSError("stream closed")

    renderer = _renderer(stream=Broken())
    renderer.handle(_event("cell_finished", cell="a", fingerprint="a"))
    assert renderer.mode == "off"
    renderer.handle(_event("cell_finished", cell="b", fingerprint="b"))
    renderer.finish()  # still silent
    # Off mode stops folding state too — the renderer is done.
    assert renderer.executed == 1


# ----------------------------------------------------------------------
# accounting
# ----------------------------------------------------------------------
def test_total_accumulates_across_plan_started_events():
    renderer = _renderer()
    renderer.handle(_event("plan_started", cells_unique=3))
    renderer.handle(_event("plan_started", cells_unique=2))
    assert renderer.total == 5


def test_terminal_events_dedup_by_fingerprint():
    renderer = _renderer()
    renderer.handle(_event("cell_finished", cell="a", fingerprint="fp-a"))
    # A late duplicate finish (post-timeout replay) and a cache hit for
    # the same fingerprint must not inflate done.
    renderer.handle(_event("cell_finished", cell="a", fingerprint="fp-a"))
    renderer.handle(_event("cache_hit", cell="a", fingerprint="fp-a"))
    renderer.handle(_event("checkpoint_resumed", cell="b", fingerprint="fp-b"))
    assert renderer.executed == 1
    assert renderer.cached == 0
    assert renderer.resumed == 1
    assert renderer.done == 2


def test_running_tracks_workers_and_clears_on_replacement():
    renderer = _renderer()
    renderer.handle(_event("cell_started", cell="a", worker="pid1"))
    renderer.handle(_event("cell_started", cell="b", worker="pid2"))
    assert renderer.running == {"pid1": "a", "pid2": "b"}
    renderer.handle(_event("cell_finished", cell="a", fingerprint="fp-a",
                           worker="pid1"))
    assert renderer.running == {"pid2": "b"}
    renderer.handle(_event("worker_replaced", reason="wedged"))
    assert renderer.running == {}
    assert renderer.replacements == 1


def test_faults_and_permanent_failures_are_counted():
    renderer = _renderer()
    renderer.handle(_event("cell_faulted", cell="a", fingerprint="fp-a",
                           injected=True, permanent=False))
    renderer.handle(_event("cell_retried", cell="a", fingerprint="fp-a"))
    renderer.handle(_event("cell_timeout", cell="b", fingerprint="fp-b",
                           injected=False, permanent=True))
    assert renderer.faults == 2
    assert renderer.retries == 1
    assert renderer.failed == 1
    line = renderer.status_line()
    assert "1 retried" in line
    assert "1 failed" in line


def test_eta_comes_from_the_observed_completion_rate():
    clock = _FakeClock()
    renderer = _renderer(clock=clock, total=4)
    assert renderer.eta_seconds() is None  # nothing observed yet
    clock.now = 10.0
    renderer.handle(_event("cell_finished", cell="a", fingerprint="a"))
    renderer.handle(_event("cell_finished", cell="b", fingerprint="b"))
    # 2 cells in 10s -> 2 remaining take ~10s more.
    assert renderer.eta_seconds() == pytest.approx(10.0)
    assert "eta 10s" in renderer.status_line()
    renderer.handle(_event("cell_finished", cell="c", fingerprint="c"))
    renderer.handle(_event("cell_finished", cell="d", fingerprint="d"))
    assert renderer.eta_seconds() is None  # done: no eta on the final line


def test_worker_detail_only_on_the_live_line():
    plain = _renderer()
    plain.handle(_event("cell_started", cell="a", worker="pid1"))
    assert "pid1" not in plain.status_line()
    live = _renderer(mode="live", throttle=0.0)
    live.handle(_event("cell_started", cell="a", worker="pid1"))
    assert "pid1:a" in live.status_line()
