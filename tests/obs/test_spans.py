"""Span API: nesting, enable/disable semantics, thread safety, overhead."""

import threading
import time

import pytest

from repro.obs import spans
from repro.obs.spans import (
    SpanRecorder,
    current_recorder,
    disable,
    enable,
    is_enabled,
    recording,
    span,
)


@pytest.fixture(autouse=True)
def _clean_recorder_state():
    """Never leak an enabled recorder into (or out of) a test."""
    disable()
    yield
    disable()


def test_disabled_span_is_shared_noop_singleton():
    assert not is_enabled()
    s1 = span("anything")
    s2 = span("something else")
    assert s1 is s2  # no allocation on the disabled path
    with s1:
        pass  # no-op, no error


def test_disabled_spans_record_nothing():
    rec = SpanRecorder()
    with span("ghost"):
        pass
    assert rec.as_dict() == {}


def test_enable_disable_roundtrip():
    rec = enable()
    assert is_enabled()
    assert current_recorder() is rec
    disable()
    assert not is_enabled()
    assert current_recorder() is None


def test_nesting_builds_slash_paths():
    with recording() as rec:
        with span("outer"):
            with span("inner"):
                pass
            with span("inner"):
                pass
        with span("outer"):
            pass
    stats = rec.as_dict()
    assert set(stats) == {"outer", "outer/inner"}
    assert stats["outer"]["count"] == 2
    assert stats["outer/inner"]["count"] == 2
    assert stats["outer"]["seconds"] >= stats["outer/inner"]["seconds"]


def test_span_records_elapsed_time():
    with recording() as rec:
        with span("sleep"):
            time.sleep(0.01)
    assert rec.stats("sleep").seconds >= 0.005


def test_span_pops_stack_on_exception():
    with recording() as rec:
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("failing"):
                    raise RuntimeError("boom")
        with span("after"):
            pass
    stats = rec.as_dict()
    # Both spans completed (recorded) despite the exception, and the
    # stack unwound: "after" is a root path, not nested under "outer".
    assert set(stats) == {"outer", "outer/failing", "after"}


def test_recording_scopes_nest_and_restore():
    with recording() as outer_rec:
        with span("outer_only"):
            pass
        with recording() as inner_rec:
            with span("inner_only"):
                pass
        assert current_recorder() is outer_rec
        with span("outer_again"):
            pass
    assert current_recorder() is None
    assert set(outer_rec.as_dict()) == {"outer_only", "outer_again"}
    assert set(inner_rec.as_dict()) == {"inner_only"}


def test_threads_nest_independently():
    """Each thread has its own stack; the recorder aggregates across them."""
    barrier = threading.Barrier(2)

    def work(name):
        barrier.wait()
        for _ in range(50):
            with span(name):
                with span("child"):
                    pass

    with recording() as rec:
        threads = [
            threading.Thread(target=work, args=(f"worker{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    stats = rec.as_dict()
    # No cross-thread path pollution: every child is under its own worker.
    assert stats["worker0"]["count"] == 50
    assert stats["worker1"]["count"] == 50
    assert stats["worker0/child"]["count"] == 50
    assert stats["worker1/child"]["count"] == 50
    assert "child" not in stats


def test_disabled_overhead_is_tiny():
    """The disabled fast path must stay cheap enough for hot loops.

    100k disabled span() calls in well under a second is a loose bound —
    the point is to catch an accidental allocation/clock regression on
    the disabled path, not to benchmark precisely.
    """
    assert not is_enabled()
    start = time.perf_counter()
    for _ in range(100_000):
        with span("hot"):
            pass
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0


def test_module_state_is_importable_consistently():
    # The module-level helpers and the module agree about state.
    rec = enable(SpanRecorder())
    try:
        assert spans.current_recorder() is rec
    finally:
        disable()
