"""RunReport construction, JSON round-tripping, and report diffing."""

import pytest

from repro.graphs import load_graph
from repro.harness import run_experiment
from repro.obs import (
    SCHEMA_VERSION,
    Convergence,
    GraphMeta,
    RunConfig,
    RunReport,
    diff_report_sets,
    diff_reports,
    load_reports,
    recording,
    report_from_measurement,
    save_reports,
)


@pytest.fixture(scope="module")
def measurement():
    graph = load_graph("urand", scale=0.03, seed=42)
    return run_experiment(graph, "dpb", graph_name="urand")


@pytest.fixture(scope="module")
def report(measurement):
    return report_from_measurement(measurement, scale=0.03, seed=42)


def test_report_mirrors_measurement(report, measurement):
    assert report.kind == "measure"
    assert report.schema_version == SCHEMA_VERSION
    assert report.counters.total_reads == measurement.reads
    assert report.counters.total_writes == measurement.writes
    assert report.counters.total_requests == measurement.requests
    assert report.time.modelled_seconds == measurement.seconds
    assert report.time.bottleneck == measurement.time.bottleneck
    assert report.instructions == measurement.instructions
    assert report.graph.num_edges == measurement.num_edges


def test_totals_equal_breakdown_sums(report):
    c = report.counters
    assert sum(c.reads_by_stream.values()) == c.total_reads
    assert sum(c.writes_by_stream.values()) == c.total_writes
    assert sum(c.reads_by_phase.values()) == c.total_reads
    assert sum(c.writes_by_phase.values()) == c.total_writes


def test_dpb_report_has_phase_breakdown(report):
    assert report.time.phase_seconds is not None
    assert set(report.time.phase_seconds) == {"binning", "accumulate", "apply"}
    assert set(report.counters.reads_by_phase) == {"binning", "accumulate", "apply"}


def test_json_round_trip_is_exact(report):
    restored = RunReport.from_json(report.to_json())
    assert restored == report
    assert restored.to_dict() == report.to_dict()


def test_round_trip_with_spans_and_convergence():
    with recording() as rec:
        from repro.kernels import pagerank

        graph = load_graph("urand", scale=0.03, seed=42)
        result = pagerank(graph, method="dpb", max_iterations=4)
    original = RunReport(
        kind="pagerank",
        graph=GraphMeta("urand", graph.num_vertices, graph.num_edges, 0.03, 42),
        config=RunConfig(method="dpb", num_iterations=result.iterations),
        convergence=Convergence(
            iterations=result.iterations,
            converged=result.converged,
            tolerance=1e-6,
            deltas=result.deltas,
        ),
        wall_spans=rec.as_dict(),
    )
    restored = RunReport.from_json(original.to_json())
    assert restored == original
    assert restored.convergence.deltas == result.deltas
    # Kernel phases nest under the solver's per-iteration span.
    assert restored.wall_spans["iteration[dpb]"]["count"] == result.iterations
    assert (
        restored.wall_spans["iteration[dpb]/binning"]["count"] == result.iterations
    )


def test_save_load_single_and_set(report, tmp_path):
    single = tmp_path / "single.json"
    save_reports([report], str(single))
    assert load_reports(str(single)) == [report]

    other = RunReport(
        kind="measure",
        graph=GraphMeta("kron", 10, 20),
        config=RunConfig(method="pb"),
    )
    multi = tmp_path / "multi.json"
    save_reports([report, other], str(multi))
    loaded = load_reports(str(multi))
    assert loaded == [report, other]


def test_unknown_schema_major_is_rejected(report):
    data = report.to_dict()
    data["schema_version"] = "999"
    with pytest.raises(ValueError, match="schema version"):
        RunReport.from_dict(data)


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
def _with_reads(report: RunReport, factor: float) -> RunReport:
    data = report.to_dict()
    data["counters"]["total_reads"] = int(data["counters"]["total_reads"] * factor)
    return RunReport.from_dict(data)


def test_identical_reports_have_no_regressions(report):
    deltas = diff_reports(report, report, threshold=0.05)
    assert deltas, "comparable metrics must exist"
    assert all(d.status == "ok" for d in deltas)


def test_grown_reads_flag_a_regression(report):
    worse = _with_reads(report, 1.5)
    deltas = diff_reports(report, worse, threshold=0.05)
    regressed = {d.metric for d in deltas if d.regressed}
    assert regressed == {"total_reads"}
    (delta,) = [d for d in deltas if d.metric == "total_reads"]
    assert delta.ratio == pytest.approx(1.5, rel=1e-3)
    assert delta.status == "REGRESSED"


def test_shrunk_reads_count_as_improvement(report):
    better = _with_reads(report, 0.5)
    deltas = diff_reports(report, better, threshold=0.05)
    assert not any(d.regressed for d in deltas)
    assert any(d.improved and d.metric == "total_reads" for d in deltas)


def test_threshold_tolerates_small_growth(report):
    slightly_worse = _with_reads(report, 1.03)
    assert not any(
        d.regressed for d in diff_reports(report, slightly_worse, threshold=0.05)
    )
    assert any(
        d.regressed for d in diff_reports(report, slightly_worse, threshold=0.01)
    )


def test_report_sets_pair_by_key_and_track_unmatched(report):
    other = RunReport(
        kind="measure",
        graph=GraphMeta("kron", 10, 20),
        config=RunConfig(method="pb"),
    )
    diff = diff_report_sets([report, other], [report], threshold=0.05)
    assert diff.ok
    assert diff.unmatched_before == ["kron/pb"]
    assert diff.unmatched_after == []
    assert {d.key for d in diff.deltas} == {"urand/dpb"}
