"""Unit tests for the public pagerank() API and method selection."""

import numpy as np
import pytest

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import make_kernel, pagerank, select_method
from tests.kernels.conftest import TINY_MACHINE


@pytest.fixture()
def graph():
    return build_csr(uniform_random_graph(2000, 8, seed=31))


def test_pagerank_converges(graph):
    result = pagerank(graph, tolerance=1e-7)
    assert result.converged
    assert result.iterations < 100
    assert result.scores.sum() == pytest.approx(1.0, abs=1e-3)


def test_pagerank_methods_agree(graph):
    results = {
        m: pagerank(graph, method=m, tolerance=1e-7).scores
        for m in ("pull", "cb", "dpb")
    }
    np.testing.assert_allclose(results["pull"], results["cb"], rtol=1e-3, atol=1e-9)
    np.testing.assert_allclose(results["pull"], results["dpb"], rtol=1e-3, atol=1e-9)


def test_pagerank_max_iterations_cap(graph):
    result = pagerank(graph, tolerance=0.0, max_iterations=3)
    assert not result.converged
    assert result.iterations == 3


def test_pagerank_validates_arguments(graph):
    with pytest.raises(ValueError, match="damping"):
        pagerank(graph, damping=1.5)
    with pytest.raises(ValueError, match="tolerance"):
        pagerank(graph, tolerance=-1)
    with pytest.raises(ValueError, match="max_iterations"):
        pagerank(graph, max_iterations=0)


def test_pagerank_unknown_method(graph):
    with pytest.raises(KeyError, match="unknown method"):
        pagerank(graph, method="quantum")


def test_auto_selects_pull_for_cache_resident_graph():
    small = build_csr(uniform_random_graph(500, 4, seed=32))
    # 500 vertices < TINY_MACHINE's 1024 cache words.
    assert select_method(small, TINY_MACHINE) == "baseline"


def test_auto_selects_dpb_for_large_sparse_graph():
    big_sparse = build_csr(uniform_random_graph(65536, 4, seed=33))
    assert select_method(big_sparse, TINY_MACHINE) == "dpb"


def test_auto_selects_cb_for_denser_graph():
    # Dense relative to the block count of the tiny machine.
    dense = build_csr(uniform_random_graph(4096, 24, seed=34))
    assert select_method(dense, TINY_MACHINE) == "cb"


def test_auto_resolution_reported(graph):
    result = pagerank(graph, method="auto", machine=TINY_MACHINE, max_iterations=2)
    assert result.method in {"baseline", "cb", "dpb"}


def test_make_kernel_passes_kwargs(graph):
    kernel = make_kernel(graph, "dpb", TINY_MACHINE, bin_width=64)
    assert kernel.layout.bin_width == 64
    kernel = make_kernel(graph, "cb", TINY_MACHINE, block_width=128)
    assert kernel.block_width == 128
