"""Tests for frontier-based PageRank-Delta."""

import numpy as np
import pytest

from repro.graphs import build_csr, kronecker_graph, uniform_random_graph
from repro.kernels import pagerank
from repro.kernels.delta import pagerank_delta


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(3000, 8, seed=131))


def test_matches_power_iteration_fixed_point(graph):
    ref = pagerank(graph, method="pull", tolerance=1e-10, max_iterations=300)
    res = pagerank_delta(graph, tolerance=1e-9)
    assert res.converged
    np.testing.assert_allclose(res.scores, ref.scores, rtol=1e-4, atol=1e-8)


def test_lazy_frontier_still_exact(graph):
    ref = pagerank(graph, method="pull", tolerance=1e-10, max_iterations=300)
    res = pagerank_delta(graph, tolerance=1e-9, frontier_tolerance=1e-6)
    assert res.converged
    np.testing.assert_allclose(res.scores, ref.scores, rtol=1e-4, atol=1e-7)


def test_frontiers_eventually_shrink(graph):
    res = pagerank_delta(graph, tolerance=1e-9)
    sizes = [r.frontier_size for r in res.rounds]
    assert sizes[-1] < sizes[0]
    assert sizes[-1] < graph.num_vertices // 2


def test_telemetry_consistency(graph):
    res = pagerank_delta(graph, tolerance=1e-8)
    for r in res.rounds:
        assert 0 <= r.frontier_size <= graph.num_vertices
        assert 0 <= r.active_edges <= graph.num_edges
        assert r.max_delta > 0
    # Deltas decay overall (geometric with ratio ~damping).
    assert res.rounds[-1].max_delta < res.rounds[0].max_delta
    assert res.total_active_edges == sum(r.active_edges for r in res.rounds)


def test_total_work_less_than_full_iterations(graph):
    """The point of the optimization: fewer propagations than running the
    same number of full power iterations."""
    res = pagerank_delta(graph, tolerance=1e-9)
    assert res.total_active_edges < res.num_rounds * graph.num_edges


def test_on_skewed_graph():
    g = build_csr(kronecker_graph(11, 8, seed=132), symmetric=True)
    ref = pagerank(g, method="pull", tolerance=1e-10, max_iterations=300)
    res = pagerank_delta(g, tolerance=1e-9)
    np.testing.assert_allclose(res.scores, ref.scores, rtol=1e-4, atol=1e-8)


def test_validation(graph):
    with pytest.raises(ValueError, match="damping"):
        pagerank_delta(graph, damping=1.0)
    with pytest.raises(ValueError, match="tolerance"):
        pagerank_delta(graph, tolerance=0.0)
    with pytest.raises(ValueError, match="frontier_tolerance"):
        pagerank_delta(graph, tolerance=1e-6, frontier_tolerance=1e-9)


def test_max_rounds_cap(graph):
    res = pagerank_delta(graph, tolerance=1e-12, max_rounds=3)
    assert not res.converged
    assert res.num_rounds == 3
