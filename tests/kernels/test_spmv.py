"""Unit and property tests for generalized SpMV with propagation blocking."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.kernels import SparseMatrix, spmv, spmv_trace
from repro.memsim import FullyAssociativeLRU, simulate
from tests.kernels.conftest import TINY_MACHINE


def random_matrix(num_rows, num_cols, nnz, seed):
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, num_rows, size=nnz)
    cols = rng.integers(0, num_cols, size=nnz)
    vals = rng.normal(size=nnz).astype(np.float32)
    return SparseMatrix.from_coo(num_rows, num_cols, rows, cols, vals)


def test_from_coo_sums_duplicates():
    m = SparseMatrix.from_coo(2, 2, [0, 0], [1, 1], [1.0, 2.0])
    assert m.nnz == 1
    assert m.dense()[0, 1] == pytest.approx(3.0)


def test_validation():
    with pytest.raises(ValueError, match="row ids"):
        SparseMatrix.from_coo(2, 2, [2], [0], [1.0])
    with pytest.raises(ValueError, match="column ids"):
        SparseMatrix(2, 2, [0, 1, 1], [5], [1.0])
    with pytest.raises(ValueError, match="offsets"):
        SparseMatrix(2, 2, [0, 1], [0], [1.0])


def test_transpose_round_trip():
    m = random_matrix(30, 20, 100, seed=1)
    t = m.transposed()
    assert t.num_rows == 20 and t.num_cols == 30
    np.testing.assert_allclose(t.dense(), m.dense().T)


@pytest.mark.parametrize("method", ["row", "pb"])
def test_matches_scipy_square(method):
    m = random_matrix(500, 500, 4000, seed=2)
    x = np.random.default_rng(3).normal(size=500).astype(np.float32)
    expected = sp.csr_matrix(
        (m.values, m.columns, m.offsets), shape=(500, 500)
    ) @ x
    got = spmv(m, x, method=method, bin_width=64)
    np.testing.assert_allclose(got, expected, rtol=1e-3, atol=1e-5)


@pytest.mark.parametrize("method", ["row", "pb"])
def test_matches_scipy_non_square(method):
    m = random_matrix(300, 700, 2500, seed=4)
    x = np.random.default_rng(5).normal(size=700).astype(np.float32)
    expected = sp.csr_matrix(
        (m.values, m.columns, m.offsets), shape=(300, 700)
    ) @ x
    got = spmv(m, x, method=method, bin_width=32)
    np.testing.assert_allclose(got, expected, rtol=1e-3, atol=1e-5)


def test_spmv_rejects_bad_x():
    m = random_matrix(10, 20, 30, seed=6)
    with pytest.raises(ValueError, match="shape"):
        spmv(m, np.zeros(10, dtype=np.float32))
    with pytest.raises(ValueError, match="method"):
        spmv(m, np.zeros(20, dtype=np.float32), method="diag")


def test_empty_matrix():
    m = SparseMatrix(3, 4, [0, 0, 0, 0], [], [])
    y = spmv(m, np.ones(4, dtype=np.float32), method="pb", bin_width=4)
    np.testing.assert_allclose(y, 0.0)


@given(
    num_rows=st.integers(1, 40),
    num_cols=st.integers(1, 40),
    seed=st.integers(0, 100),
    method=st.sampled_from(["row", "pb"]),
)
@settings(max_examples=60, deadline=None)
def test_property_matches_dense(num_rows, num_cols, seed, method):
    rng = np.random.default_rng(seed)
    nnz = int(rng.integers(0, 4 * max(num_rows, num_cols)))
    m = SparseMatrix.from_coo(
        num_rows,
        num_cols,
        rng.integers(0, num_rows, size=nnz),
        rng.integers(0, num_cols, size=nnz),
        rng.normal(size=nnz).astype(np.float32),
    )
    x = rng.normal(size=num_cols).astype(np.float32)
    expected = m.dense() @ x.astype(np.float64)
    got = spmv(m, x, method=method, bin_width=8)
    np.testing.assert_allclose(got, expected, rtol=1e-3, atol=1e-4)


@pytest.mark.parametrize("method", ["row", "pb"])
def test_trace_runs_and_counts(method):
    m = random_matrix(4096, 4096, 30000, seed=7)
    engine = FullyAssociativeLRU(TINY_MACHINE.llc)
    counters = simulate(
        spmv_trace(m, method=method, bin_width=256, machine=TINY_MACHINE), engine
    )
    assert counters.total_reads > 0


def test_pb_trace_reduces_communication_vs_row():
    """Section IX's claim, measured: PB-SpMV beats row-major SpMV on a
    low-locality matrix (n much larger than the cache)."""
    m = random_matrix(8192, 8192, 65536, seed=8)
    row = simulate(
        spmv_trace(m, method="row", machine=TINY_MACHINE),
        FullyAssociativeLRU(TINY_MACHINE.llc),
    )
    pb = simulate(
        spmv_trace(m, method="pb", bin_width=512, machine=TINY_MACHINE),
        FullyAssociativeLRU(TINY_MACHINE.llc),
    )
    assert pb.total_requests < row.total_requests
