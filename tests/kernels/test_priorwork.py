"""Tests for the prior-work strategy models (Table II)."""

import pytest

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import CSBStyle, GaloisStyle, GraphMatStyle, LigraStyle, PRIOR_WORK
from repro.kernels.pull import PullPageRank
from tests.kernels.conftest import TINY_MACHINE


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(8192, 8, seed=41))


@pytest.fixture(scope="module")
def baseline_counters(graph):
    return PullPageRank(graph, TINY_MACHINE).measure(1)


def test_registry_matches_table_ii_rows():
    assert list(PRIOR_WORK) == ["csb", "galois", "graphmat", "ligra"]


def test_every_prior_system_reads_more_than_baseline(graph, baseline_counters):
    """Table II: the baseline communicates the least of all five codebases."""
    for cls in PRIOR_WORK.values():
        counters = cls(graph, TINY_MACHINE).measure(1)
        assert counters.total_reads > baseline_counters.total_reads, cls.name


def test_every_prior_system_executes_more_instructions(graph):
    base = PullPageRank(graph).instruction_count()
    for cls in PRIOR_WORK.values():
        assert cls(graph).instruction_count() > 1.5 * base, cls.name


def test_ligra_reads_roughly_double_gather_traffic(graph, baseline_counters):
    """Ligra gathers two words (score + degree) per edge instead of one."""
    ligra = LigraStyle(graph, TINY_MACHINE).measure(1)
    ratio = ligra.total_reads / baseline_counters.total_reads
    assert 1.4 < ratio < 2.2  # paper's urand ratio: 3983/2269 = 1.76


def test_graphmat_traffic_close_to_baseline(graph, baseline_counters):
    """GraphMat's overhead is instructions, not traffic (2338 vs 2269 M)."""
    gm = GraphMatStyle(graph, TINY_MACHINE).measure(1)
    ratio = gm.total_reads / baseline_counters.total_reads
    assert 1.0 <= ratio < 1.15


def test_galois_and_csb_traffic_overheads_ordered(graph, baseline_counters):
    galois = GaloisStyle(graph, TINY_MACHINE).measure(1).total_reads
    csb = CSBStyle(graph, TINY_MACHINE).measure(1).total_reads
    base = baseline_counters.total_reads
    # Paper: Galois 2535, CSB 2504, baseline 2269 -> both ~1.1x baseline,
    # Galois slightly above CSB.
    assert 1.05 < galois / base < 1.35
    assert 1.03 < csb / base < 1.30
    assert galois >= csb


def test_instruction_ordering_matches_table_ii(graph):
    """GraphMat > CSB > Galois > Ligra > baseline in instructions."""
    counts = {
        name: cls(graph).instruction_count() for name, cls in PRIOR_WORK.items()
    }
    counts["baseline"] = PullPageRank(graph).instruction_count()
    assert (
        counts["graphmat"]
        > counts["csb"]
        > counts["galois"]
        > counts["ligra"]
        > counts["baseline"]
    )
