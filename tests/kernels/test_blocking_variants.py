"""Tests for 2-D cache blocking and CSR segmenting."""

import numpy as np
import pytest

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import make_kernel, reference_pagerank
from repro.kernels.blocking_variants import (
    CacheBlocked2DPageRank,
    CSRSegmentingPageRank,
)
from repro.memsim import Stream
from repro.models import SIMULATED_MACHINE
from tests.kernels.conftest import TINY_MACHINE


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(8192, 8, seed=161))


@pytest.mark.parametrize("cls", [CacheBlocked2DPageRank, CSRSegmentingPageRank])
@pytest.mark.parametrize("iterations", [1, 3])
def test_matches_reference(graph, cls, iterations):
    expected = reference_pagerank(graph, iterations)
    got = cls(graph, TINY_MACHINE).run(iterations)
    np.testing.assert_allclose(got, expected, rtol=2e-4, atol=1e-9)


@pytest.mark.parametrize("cls", [CacheBlocked2DPageRank, CSRSegmentingPageRank])
def test_handles_directed_and_dangling(cls):
    g = build_csr(uniform_random_graph(1000, 4, seed=162, symmetric=False))
    expected = reference_pagerank(g, 2)
    got = cls(g, TINY_MACHINE).run(2)
    np.testing.assert_allclose(got, expected, rtol=2e-4, atol=1e-9)


def test_2d_communicates_like_1d(graph):
    """The paper's Section V claim, measured: 2-D cache blocking does not
    communicate significantly less than 1-D."""
    cb1d = make_kernel(graph, "cb", TINY_MACHINE).measure(1)
    cb2d = CacheBlocked2DPageRank(graph, TINY_MACHINE).measure(1)
    ratio = cb2d.total_requests / cb1d.total_requests
    assert 0.9 < ratio < 1.15


def test_2d_grid_covers_all_edges(graph):
    kernel = CacheBlocked2DPageRank(graph, TINY_MACHINE, block_width=512)
    total = sum(hi - lo for _, _, lo, hi in kernel._cells())
    assert total == graph.num_edges


def test_segmenting_removes_low_locality_gathers(graph):
    """All contribution gathers hit the cached segment slice."""
    kernel = CSRSegmentingPageRank(graph, TINY_MACHINE)
    counters = kernel.measure(1)
    gathers = counters.accesses[Stream.VERTEX_CONTRIB]
    hits = counters.hits[Stream.VERTEX_CONTRIB]
    assert hits / gathers > 0.75


def test_segmenting_beats_baseline_but_scales_with_segments(graph):
    base = make_kernel(graph, "baseline", TINY_MACHINE).measure(1)
    seg = CSRSegmentingPageRank(graph, TINY_MACHINE).measure(1)
    assert seg.total_requests < base.total_requests
    # More segments -> more partial-vector traffic (the n/c scaling that
    # loses to propagation blocking).
    fine = CSRSegmentingPageRank(graph, TINY_MACHINE, segment_width=128).measure(1)
    coarse = CSRSegmentingPageRank(graph, TINY_MACHINE, segment_width=1024).measure(1)
    assert fine.total_requests > coarse.total_requests


def test_dpb_beats_both_variants_on_large_sparse(graph):
    dpb = make_kernel(graph, "dpb", TINY_MACHINE).measure(1).total_requests
    cb2d = CacheBlocked2DPageRank(graph, TINY_MACHINE).measure(1).total_requests
    seg = CSRSegmentingPageRank(graph, TINY_MACHINE).measure(1).total_requests
    assert dpb < seg
    # 2-D CB inherits 1-D CB's position relative to DPB at this n/c ratio.
    assert dpb < 1.2 * cb2d


def test_trace_deterministic(graph):
    a = CSRSegmentingPageRank(graph, TINY_MACHINE).measure(1)
    b = CSRSegmentingPageRank(graph, TINY_MACHINE).measure(1)
    assert a.total_requests == b.total_requests
