"""Unit tests for :mod:`repro.kernels.layout` (trace emission helpers)."""

import numpy as np
import pytest

from repro.graphs import CSRGraph
from repro.kernels.layout import (
    build_regions,
    csr_stream_words,
    gather,
    monotone_scan,
    scatter,
    seq_read,
    seq_write,
    streaming_write,
)
from repro.memsim import AccessMode, Stream
from repro.models.machine import SIMULATED_MACHINE


@pytest.fixture()
def region():
    return build_regions(SIMULATED_MACHINE, {"r": 64})["r"]


def test_csr_stream_words():
    g = CSRGraph(offsets=[0, 2, 3], targets=[1, 0, 0])
    index_words, adj_words = csr_stream_words(g)
    assert index_words == 4  # 2 vertices x 2 words (64-bit pointers)
    assert adj_words == 3


def test_build_regions_disjoint():
    regions = build_regions(SIMULATED_MACHINE, {"a": 100, "b": 100})
    a_lines = set(regions["a"].sequential_lines().tolist())
    b_lines = set(regions["b"].sequential_lines().tolist())
    assert a_lines.isdisjoint(b_lines)


def test_seq_read_covers_whole_region(region):
    chunk = seq_read(region, Stream.EDGE_ADJ)
    assert chunk.mode is AccessMode.SEQUENTIAL
    assert not chunk.write
    assert chunk.num_accesses == region.num_lines


def test_seq_write_and_streaming_write(region):
    w = seq_write(region, Stream.VERTEX_SCORES)
    assert w.write and not w.streaming_store
    nt = streaming_write(region, Stream.BIN_DATA)
    assert nt.write and nt.streaming_store


def test_streaming_write_subrange(region):
    chunk = streaming_write(region, Stream.BIN_DATA, start_word=16, num_words=16)
    assert chunk.num_accesses == 1  # exactly one line (16 words per line)


def test_gather_maps_indices_to_lines(region):
    chunk = gather(region, np.array([0, 15, 16, 63]), Stream.VERTEX_CONTRIB)
    assert chunk.mode is AccessMode.IRREGULAR
    base = region.base_line
    np.testing.assert_array_equal(chunk.lines, [base, base, base + 1, base + 3])


def test_scatter_is_write(region):
    chunk = scatter(region, np.array([1, 2]), Stream.VERTEX_SUMS)
    assert chunk.write
    assert chunk.mode is AccessMode.IRREGULAR


def test_monotone_scan_dedups_lines(region):
    chunk = monotone_scan(region, np.array([0, 1, 2, 17, 18, 40]), Stream.VERTEX_CONTRIB)
    assert chunk.mode is AccessMode.SEQUENTIAL
    base = region.base_line
    np.testing.assert_array_equal(chunk.lines, [base, base + 1, base + 2])


def test_monotone_scan_rejects_descending(region):
    with pytest.raises(ValueError, match="non-decreasing"):
        monotone_scan(region, np.array([5, 3]), Stream.VERTEX_CONTRIB)


def test_monotone_scan_empty(region):
    chunk = monotone_scan(region, np.array([], dtype=np.int64), Stream.VERTEX_CONTRIB)
    assert chunk.num_accesses == 0


def test_gather_bounds_checked(region):
    with pytest.raises(IndexError):
        gather(region, np.array([64]), Stream.VERTEX_CONTRIB)
