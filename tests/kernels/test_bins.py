"""Unit tests for :mod:`repro.kernels.bins`."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import EdgeList, build_csr, uniform_random_graph
from repro.kernels import BinLayout, default_bin_width
from repro.models.machine import SIMULATED_MACHINE


@pytest.fixture()
def graph():
    return build_csr(uniform_random_graph(1000, 8, seed=21))


def test_layout_geometry(graph):
    layout = BinLayout(graph, 256)
    assert layout.num_bins == 4
    assert layout.bin_width_bytes == 1024
    assert layout.bin_slice(0) == (0, 256)
    assert layout.bin_slice(3) == (768, 1000)


def test_layout_rejects_non_power_of_two(graph):
    with pytest.raises(ValueError, match="power of two"):
        BinLayout(graph, 100)


def test_bin_slice_bounds(graph):
    layout = BinLayout(graph, 256)
    with pytest.raises(IndexError):
        layout.bin_slice(4)
    with pytest.raises(IndexError):
        layout.bin_slice(-1)


def test_bins_partition_all_edges(graph):
    layout = BinLayout(graph, 128)
    assert sum(layout.bin_count(i) for i in range(layout.num_bins)) == graph.num_edges
    layout.check()


def test_destinations_within_slice(graph):
    layout = BinLayout(graph, 128)
    for i in range(layout.num_bins):
        dsts = layout.bin_destinations(i)
        start, stop = layout.bin_slice(i)
        if dsts.size:
            assert dsts.min() >= start
            assert dsts.max() < stop


def test_order_is_permutation(graph):
    layout = BinLayout(graph, 64)
    assert sorted(layout.order.tolist()) == list(range(graph.num_edges))


def test_deterministic_layout_is_stable_within_bins(graph):
    """Within a bin, propagations keep CSR (source) order — the property
    DPB's reusable destination indices rely on."""
    layout = BinLayout(graph, 128)
    for i in range(layout.num_bins):
        lo, hi = int(layout.bounds[i]), int(layout.bounds[i + 1])
        positions = layout.order[lo:hi]
        assert np.all(np.diff(positions) > 0)


def test_single_bin_when_width_covers_graph(graph):
    layout = BinLayout(graph, 1024)
    assert layout.num_bins == 1
    np.testing.assert_array_equal(np.sort(layout.sorted_dst), np.sort(graph.targets))


def test_edge_bin_ids_in_csr_order(graph):
    layout = BinLayout(graph, 128)
    ids = layout.edge_bin_ids()
    assert ids.size == graph.num_edges
    np.testing.assert_array_equal(ids, graph.targets.astype(np.int64) >> 7)


def test_default_bin_width_follows_half_cache_rule():
    width = default_bin_width(SIMULATED_MACHINE)
    assert width & (width - 1) == 0
    # Slice words <= half the LLC words.
    assert width <= SIMULATED_MACHINE.cache_words // 2
    assert width > SIMULATED_MACHINE.cache_words // 8


@given(
    n=st.integers(min_value=1, max_value=100),
    width_exp=st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=5),
)
@settings(max_examples=50, deadline=None)
def test_property_layout_invariants(n, width_exp, seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(0, 4 * n))
    el = EdgeList(
        n,
        rng.integers(0, n, size=m).astype(np.int32),
        rng.integers(0, n, size=m).astype(np.int32),
    )
    g = build_csr(el, dedup=False)
    layout = BinLayout(g, 1 << width_exp)
    layout.check()
    # Accumulating bins in order recovers every destination exactly once.
    collected = np.concatenate(
        [layout.bin_destinations(i) for i in range(layout.num_bins)]
    )
    assert sorted(collected.tolist()) == sorted(g.targets.tolist())
