"""Tests for active-subset propagation (paper Section IX)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import EdgeList, build_csr, uniform_random_graph
from repro.kernels.base import compute_contributions, init_scores
from repro.kernels.partial import (
    PARTIAL_METHODS,
    active_edge_count,
    partial_propagate,
    partial_trace,
)
from repro.memsim import FullyAssociativeLRU, simulate
from tests.kernels.conftest import TINY_MACHINE


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(4096, 8, seed=81))


def measure(graph, active, method):
    return simulate(
        partial_trace(graph, active, method, TINY_MACHINE),
        FullyAssociativeLRU(TINY_MACHINE.llc),
    )


def test_active_edge_count(graph):
    all_active = np.ones(graph.num_vertices, dtype=bool)
    assert active_edge_count(graph, all_active) == graph.num_edges
    none_active = np.zeros(graph.num_vertices, dtype=bool)
    assert active_edge_count(graph, none_active) == 0


def test_mask_shape_validated(graph):
    with pytest.raises(ValueError, match="active mask"):
        partial_propagate(graph, np.ones(3, dtype=bool))
    with pytest.raises(ValueError, match="method"):
        list(partial_trace(graph, np.ones(graph.num_vertices, bool), "warp"))


def test_partial_propagate_matches_manual(graph):
    rng = np.random.default_rng(1)
    active = rng.random(graph.num_vertices) < 0.5
    scores = init_scores(graph.num_vertices)
    sums = partial_propagate(graph, active, scores)
    # Manual per-edge reference.
    contributions = compute_contributions(scores, graph.out_degrees())
    expected = np.zeros(graph.num_vertices, dtype=np.float64)
    for u, v in zip(graph.edge_sources(), graph.targets):
        if active[u]:
            expected[v] += contributions[u]
    np.testing.assert_allclose(sums, expected, rtol=1e-4, atol=1e-9)


def test_all_active_equals_full_push(graph):
    active = np.ones(graph.num_vertices, dtype=bool)
    sums = partial_propagate(graph, active)
    contributions = compute_contributions(
        init_scores(graph.num_vertices), graph.out_degrees()
    )
    expected = np.bincount(
        graph.targets,
        weights=contributions[graph.edge_sources()].astype(np.float64),
        minlength=graph.num_vertices,
    )
    np.testing.assert_allclose(sums, expected, rtol=1e-4)


@pytest.mark.parametrize("method", PARTIAL_METHODS)
def test_traces_produce_traffic(graph, method):
    rng = np.random.default_rng(2)
    active = rng.random(graph.num_vertices) < 0.2
    counters = measure(graph, active, method)
    assert counters.total_requests > 0


def test_pb_traffic_scales_with_active_fraction(graph):
    """The Section IX claim: PB traffic ~ active propagations."""
    rng = np.random.default_rng(3)
    small = rng.random(graph.num_vertices) < 0.05
    large = rng.random(graph.num_vertices) < 0.8
    pb_small = measure(graph, small, "pb").total_requests
    pb_large = measure(graph, large, "pb").total_requests
    edges_small = active_edge_count(graph, small)
    edges_large = active_edge_count(graph, large)
    # Traffic ratio tracks the active-edge ratio within a modest factor
    # (fixed n/b terms dominate only at the very small end).
    assert pb_small / pb_large < 3.5 * edges_small / edges_large


def test_cb_and_pull_traffic_do_not_scale_down(graph):
    """CB streams its whole blocked graph; pull reads every in-edge."""
    rng = np.random.default_rng(4)
    tiny = rng.random(graph.num_vertices) < 0.02
    full = np.ones(graph.num_vertices, dtype=bool)
    for method in ("pull", "cb"):
        at_tiny = measure(graph, tiny, method).total_requests
        at_full = measure(graph, full, method).total_requests
        assert at_tiny > 0.5 * at_full, method  # barely shrinks


def test_pb_wins_at_small_fractions(graph):
    rng = np.random.default_rng(5)
    active = rng.random(graph.num_vertices) < 0.05
    edges = active_edge_count(graph, active)
    per_edge = {
        method: measure(graph, active, method).total_requests / edges
        for method in PARTIAL_METHODS
    }
    assert per_edge["pb"] < per_edge["cb"] < per_edge["pull"]


def test_no_active_vertices(graph):
    active = np.zeros(graph.num_vertices, dtype=bool)
    sums = partial_propagate(graph, active)
    assert not sums.any()
    for method in PARTIAL_METHODS:
        counters = measure(graph, active, method)
        assert counters.total_requests >= 0  # traces must not crash


@given(seed=st.integers(0, 50), fraction=st.floats(0.0, 1.0))
@settings(max_examples=30, deadline=None)
def test_property_partial_sums_bounded(seed, fraction):
    rng = np.random.default_rng(seed)
    n = 200
    el = EdgeList(
        n,
        rng.integers(0, n, size=600).astype(np.int32),
        rng.integers(0, n, size=600).astype(np.int32),
    )
    g = build_csr(el)
    active = rng.random(n) < fraction
    sums = partial_propagate(g, active)
    full = partial_propagate(g, np.ones(n, dtype=bool))
    assert np.isfinite(sums).all()
    # Activating fewer vertices never increases any sum.
    assert np.all(sums <= full + 1e-6)
