"""Shared fixtures for kernel tests: small graphs and a tiny machine."""

import pytest

from repro.graphs import build_csr, uniform_random_graph, web_crawl_graph
from repro.memsim import CacheConfig
from repro.models.machine import MachineSpec

#: A machine small enough that a few-thousand-vertex graph is "large":
#: 4 KiB LLC = 1024 words, 64 lines.  The 2 KiB L1 (32 lines) comfortably
#: holds the insertion points of the default bin count, like the real L1.
TINY_MACHINE = MachineSpec(
    name="tiny",
    llc=CacheConfig(capacity_bytes=4 * 1024, line_bytes=64),
    l1=CacheConfig(capacity_bytes=2 * 1024, line_bytes=64),
    mem_bandwidth_requests=1e9,
    instr_rate=50e9,
)


@pytest.fixture()
def tiny_machine():
    return TINY_MACHINE


@pytest.fixture()
def random_graph():
    """Symmetric uniform random graph, n >> tiny cache words."""
    return build_csr(uniform_random_graph(8192, 8, seed=3))


@pytest.fixture()
def directed_graph():
    return build_csr(uniform_random_graph(4096, 6, seed=4, symmetric=False))


@pytest.fixture()
def local_graph():
    """High-locality banded graph (web stand-in)."""
    return build_csr(web_crawl_graph(8192, 6, seed=5, window=128))
