"""Traffic-level tests of the traced kernels.

These check the *memory behaviour* claims each kernel is built around:
stream composition, phase attribution, and the paper's qualitative
orderings (blocking reduces gather misses, DPB writes less than PB, the
high-locality graph defeats blocking, ...).
"""

import numpy as np
import pytest

from repro.kernels import make_kernel
from repro.kernels.propagation_blocking import (
    DeterministicPBPageRank,
    PropagationBlockingPageRank,
)
from repro.memsim import STREAM_CATEGORY, Stream
from tests.kernels.conftest import TINY_MACHINE


def measure(graph, method, **kwargs):
    return make_kernel(graph, method, TINY_MACHINE, **kwargs).measure(1)


def test_baseline_vertex_traffic_dominates_on_random_graph(random_graph):
    counters = measure(random_graph, "baseline")
    # Figure 3: low-locality graphs spend far more than 50% of reads on
    # vertex values.
    assert counters.vertex_read_fraction() > 0.8


def test_baseline_vertex_traffic_small_on_local_graph(local_graph):
    counters = measure(local_graph, "baseline")
    assert counters.vertex_read_fraction() < 0.65


def test_edge_traffic_matches_csr_size(random_graph):
    counters = measure(random_graph, "baseline")
    b = TINY_MACHINE.words_per_line
    n, m = random_graph.num_vertices, random_graph.num_edges
    expected_edge_lines = -(-2 * n // b) + -(-m // b)  # index + adjacency
    assert counters.category_reads("edge") == expected_edge_lines


def test_blocking_reduces_communication_on_random_graph(random_graph):
    base = measure(random_graph, "baseline").total_requests
    for method in ("cb", "pb", "dpb"):
        blocked = measure(random_graph, method).total_requests
        assert blocked < base, method


def test_blocking_does_not_help_local_graph(local_graph):
    base = measure(local_graph, "baseline").total_requests
    dpb = measure(local_graph, "dpb").total_requests
    # web-like graph: blocking is at best a wash (paper: <5% worse; the
    # simulator shows the same sign with a wider margin).
    assert dpb > 0.8 * base


def test_dpb_writes_less_than_pb(random_graph):
    pb = measure(random_graph, "pb")
    dpb = measure(random_graph, "dpb")
    # Reusing destination indices halves binning-phase bin writes.
    assert dpb.writes[Stream.BIN_DATA] <= 0.6 * pb.writes[Stream.BIN_DATA]
    # Reads are nearly identical (DPB splits pairs into two arrays).
    assert dpb.total_reads == pytest.approx(pb.total_reads, rel=0.1)


def test_pb_bin_traffic_proportional_to_edges(random_graph):
    counters = measure(random_graph, "pb")
    b = TINY_MACHINE.words_per_line
    m = random_graph.num_edges
    # Pairs written once (binning) and read once (accumulate): ~2m/b each,
    # plus per-bin line rounding.
    expected = 2 * m / b
    assert counters.writes[Stream.BIN_DATA] == pytest.approx(expected, rel=0.15)
    assert counters.reads[Stream.BIN_DATA] == pytest.approx(expected, rel=0.15)


def test_pb_sums_scatters_hit_in_cache(random_graph):
    counters = measure(random_graph, "pb")
    # Accumulate-phase sums accesses: compulsory misses only (one per slice
    # line), everything else hits because the slice is cache-resident.
    sums_accesses = counters.accesses[Stream.VERTEX_SUMS]
    sums_hits = counters.hits[Stream.VERTEX_SUMS]
    assert sums_hits / sums_accesses > 0.8


def test_push_scatter_traffic_exceeds_pull_gather(random_graph):
    pull = measure(random_graph, "baseline")
    push = measure(random_graph, "push")
    # Unblocked push does read-modify-writes on the full sums range:
    # roughly the same misses as pull's gathers but with write-backs too.
    assert push.total_requests > pull.total_requests


def test_phase_attribution_pb(random_graph):
    counters = measure(random_graph, "pb")
    assert counters.phase_reads["binning"] > 0
    assert counters.phase_writes["binning"] > 0
    assert counters.phase_reads["accumulate"] > 0
    assert counters.phase_reads["apply"] > 0


def test_trace_deterministic(random_graph):
    a = measure(random_graph, "dpb")
    b = measure(random_graph, "dpb")
    assert a.total_reads == b.total_reads
    assert a.total_writes == b.total_writes


def test_two_iterations_double_traffic(random_graph):
    kernel = make_kernel(random_graph, "dpb", TINY_MACHINE)
    one = kernel.measure(1)
    two = kernel.measure(2)
    # Steady-state per-iteration traffic is iteration-independent (the
    # paper simulates single iterations for exactly this reason).
    assert two.total_requests == pytest.approx(2 * one.total_requests, rel=0.02)


def test_measure_with_alternate_engine(random_graph):
    flru = make_kernel(random_graph, "dpb", TINY_MACHINE).measure(1, engine="flru")
    dmap = make_kernel(random_graph, "dpb", TINY_MACHINE).measure(1, engine="dmap")
    # Direct-mapped conflicts only ever add misses.
    assert dmap.total_reads >= flru.total_reads
    # But for DPB (streaming + cached slices) they should stay close.
    assert dmap.total_reads <= 2.0 * flru.total_reads


def test_cb_contribution_rereads_scale_with_blocks(random_graph):
    few_blocks = measure(random_graph, "cb", block_width=4096)
    many_blocks = measure(random_graph, "cb", block_width=512)
    assert (
        many_blocks.reads[Stream.VERTEX_CONTRIB]
        > few_blocks.reads[Stream.VERTEX_CONTRIB]
    )


def test_streams_cover_all_reads(random_graph):
    counters = measure(random_graph, "dpb")
    total_by_category = sum(
        counters.category_reads(cat) for cat in ("edge", "vertex", "bin", "other")
    )
    assert total_by_category == counters.total_reads
    assert set(STREAM_CATEGORY.values()) == {"edge", "vertex", "bin", "other"}
