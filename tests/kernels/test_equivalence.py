"""Cross-implementation equivalence: every strategy computes the same scores.

The paper's whole premise is that baseline, CB, PB and DPB are *the same
algorithm* with different memory behaviour.  These tests pin that down:
each kernel's float32 scores must match the float64 per-edge oracle within
accumulation tolerance, on fixed graphs and property-based random ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import EdgeList, build_csr, uniform_random_graph
from repro.kernels import KERNELS, PRIOR_WORK, make_kernel, reference_pagerank

ALL_METHODS = ["baseline", "push", "cb", "pb", "dpb"]


@pytest.mark.parametrize("method", ALL_METHODS)
@pytest.mark.parametrize("iterations", [1, 3])
def test_matches_reference_on_random_graph(method, iterations):
    g = build_csr(uniform_random_graph(3000, 8, seed=11))
    expected = reference_pagerank(g, iterations)
    got = make_kernel(g, method).run(iterations)
    np.testing.assert_allclose(got, expected, rtol=2e-4, atol=1e-9)


@pytest.mark.parametrize("method", ALL_METHODS)
def test_matches_reference_on_directed_graph(method):
    g = build_csr(uniform_random_graph(2000, 5, seed=12, symmetric=False))
    expected = reference_pagerank(g, 2)
    got = make_kernel(g, method).run(2)
    np.testing.assert_allclose(got, expected, rtol=2e-4, atol=1e-9)


@pytest.mark.parametrize("method", ALL_METHODS)
def test_handles_dangling_vertices(method):
    # Star pointing inward: center has no out-edges.
    n = 50
    el = EdgeList(n, list(range(1, n)), [0] * (n - 1))
    g = build_csr(el)
    expected = reference_pagerank(g, 3)
    got = make_kernel(g, method).run(3)
    np.testing.assert_allclose(got, expected, rtol=2e-4, atol=1e-9)


@pytest.mark.parametrize("method", ALL_METHODS)
def test_handles_edgeless_graph(method):
    g = build_csr(EdgeList(10, [], []))
    got = make_kernel(g, method).run(1)
    expected = reference_pagerank(g, 1)
    np.testing.assert_allclose(got, expected, rtol=1e-6)


@pytest.mark.parametrize("name", sorted(PRIOR_WORK))
def test_prior_work_kernels_also_correct(name):
    g = build_csr(uniform_random_graph(1000, 6, seed=13))
    expected = reference_pagerank(g, 2)
    got = PRIOR_WORK[name](g).run(2)
    np.testing.assert_allclose(got, expected, rtol=2e-4, atol=1e-9)


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    m = draw(st.integers(min_value=0, max_value=200))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    return EdgeList(n, src, dst)


@given(edges=random_edge_lists(), method=st.sampled_from(ALL_METHODS))
@settings(max_examples=60, deadline=None)
def test_property_all_methods_match_reference(edges, method):
    g = build_csr(edges)
    expected = reference_pagerank(g, 2)
    # Tiny bin/block widths exercise multi-bin paths even on small graphs.
    kwargs = {}
    if method in ("pb", "dpb"):
        kwargs["bin_width"] = 8
    if method == "cb":
        kwargs["block_width"] = 8
    got = make_kernel(g, method, **kwargs).run(2)
    np.testing.assert_allclose(got, expected, rtol=5e-4, atol=1e-9)


@given(edges=random_edge_lists())
@settings(max_examples=40, deadline=None)
def test_property_scores_bounded_and_finite(edges):
    g = build_csr(edges)
    scores = make_kernel(g, "dpb", bin_width=16).run(3)
    assert np.isfinite(scores).all()
    assert (scores >= 0).all()
    assert scores.sum() <= 1.0 + 1e-4  # dangling mass only ever leaks out


def test_registry_covers_expected_methods():
    assert set(KERNELS) == {
        "baseline",
        "pull",
        "push",
        "cb",
        "pb",
        "dpb",
        "pb-compiled",
        "dpb-compiled",
    }
