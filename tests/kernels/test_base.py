"""Unit tests for :mod:`repro.kernels.base`."""

import numpy as np
import pytest

from repro.graphs import CSRGraph, build_csr, uniform_random_graph
from repro.kernels import (
    InstructionModel,
    apply_damping,
    compute_contributions,
    init_scores,
    reference_pagerank,
    score_delta,
)
from repro.kernels.pull import PullPageRank


def test_init_scores_uniform():
    scores = init_scores(4)
    np.testing.assert_allclose(scores, 0.25)
    assert scores.dtype == np.float32


def test_compute_contributions_handles_zero_degree():
    scores = np.array([0.5, 0.5], dtype=np.float32)
    degrees = np.array([2, 0])
    contributions = compute_contributions(scores, degrees)
    np.testing.assert_allclose(contributions, [0.25, 0.0])
    assert np.isfinite(contributions).all()


def test_apply_damping_formula():
    sums = np.array([0.0, 1.0], dtype=np.float32)
    out = apply_damping(sums, num_vertices=2, damping=0.85)
    np.testing.assert_allclose(out, [0.075, 0.925], rtol=1e-6)


def test_score_delta():
    a = np.array([0.1, 0.2], dtype=np.float32)
    b = np.array([0.2, 0.1], dtype=np.float32)
    assert score_delta(a, b) == pytest.approx(0.2, rel=1e-5)


def test_reference_pagerank_cycle():
    # A 3-cycle: symmetric scores = 1/3 at every iteration.
    g = CSRGraph(offsets=[0, 1, 2, 3], targets=[1, 2, 0])
    scores = reference_pagerank(g, 10)
    np.testing.assert_allclose(scores, 1.0 / 3, rtol=1e-9)


def test_reference_pagerank_mass_conservation_without_dangling():
    g = build_csr(uniform_random_graph(500, 6, seed=1))  # symmetric: no dangling
    scores = reference_pagerank(g, 5)
    assert scores.sum() == pytest.approx(1.0, abs=1e-9)


def test_reference_pagerank_drops_dangling_mass():
    # 0 -> 1, vertex 1 dangles: its mass is dropped, total < 1.
    g = CSRGraph(offsets=[0, 1, 1], targets=[1])
    scores = reference_pagerank(g, 2)
    assert scores.sum() < 1.0


def test_instruction_model_linear():
    model = InstructionModel(per_edge=2.0, per_vertex=3.0)
    assert model.count(10, 100) == 230.0


def test_kernel_rejects_empty_graph():
    g = CSRGraph(offsets=[0], targets=[])
    with pytest.raises(ValueError, match="at least one vertex"):
        PullPageRank(g)


def test_kernel_rejects_bad_scores_shape():
    g = build_csr(uniform_random_graph(100, 4, seed=2))
    kernel = PullPageRank(g)
    with pytest.raises(ValueError, match="shape"):
        kernel.run(scores=np.zeros(5, dtype=np.float32))


def test_instruction_count_scales_with_iterations():
    g = build_csr(uniform_random_graph(100, 4, seed=2))
    kernel = PullPageRank(g)
    assert kernel.instruction_count(3) == pytest.approx(3 * kernel.instruction_count(1))
