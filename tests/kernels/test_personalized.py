"""Tests for personalized PageRank (random walk with restart)."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import pagerank
from repro.kernels.personalized import (
    personalized_pagerank,
    restart_teleport,
    uniform_teleport,
)


@pytest.fixture(scope="module")
def graph():
    # Symmetric -> no dangling vertices -> comparable with networkx.
    return build_csr(uniform_random_graph(600, 6, seed=151))


def test_uniform_teleport_recovers_standard_pagerank(graph):
    standard = pagerank(graph, method="pull", tolerance=1e-9)
    personalized = personalized_pagerank(
        graph, uniform_teleport(graph.num_vertices), tolerance=1e-9
    )
    np.testing.assert_allclose(
        personalized.scores, standard.scores, rtol=1e-3, atol=1e-8
    )


@pytest.mark.parametrize("method", ["pull", "dpb"])
def test_matches_networkx_personalization(graph, method):
    seeds = [3, 77, 500]
    result = personalized_pagerank(
        graph,
        restart_teleport(graph.num_vertices, seeds),
        method=method,
        tolerance=1e-10,
    )
    G = nx.DiGraph()
    G.add_nodes_from(range(graph.num_vertices))
    G.add_edges_from(zip(graph.edge_sources().tolist(), graph.targets.tolist()))
    personalization = {v: (1.0 / 3 if v in seeds else 0.0) for v in G}
    expected = nx.pagerank(G, alpha=0.85, personalization=personalization, tol=1e-12)
    got = result.scores
    for v in range(graph.num_vertices):
        assert got[v] == pytest.approx(expected[v], rel=2e-3, abs=1e-7)


def test_methods_agree(graph):
    teleport = restart_teleport(graph.num_vertices, [0])
    a = personalized_pagerank(graph, teleport, method="pull", tolerance=1e-10)
    b = personalized_pagerank(graph, teleport, method="dpb", tolerance=1e-10)
    np.testing.assert_allclose(a.scores, b.scores, rtol=1e-4, atol=1e-9)


def test_restart_mass_concentrates_near_seeds(graph):
    seed = 42
    result = personalized_pagerank(
        graph, restart_teleport(graph.num_vertices, [seed]), tolerance=1e-10
    )
    # The seed itself holds at least the restart probability.
    assert result.scores[seed] > 0.15
    # Mass decays with distance: neighbors outrank the median vertex.
    neighbors = graph.neighbors(seed)
    if neighbors.size:
        median = float(np.median(result.scores))
        assert result.scores[neighbors].mean() > median


def test_restart_teleport_validation(graph):
    with pytest.raises(ValueError, match="seeds"):
        restart_teleport(10, [])
    with pytest.raises(ValueError, match="seeds"):
        restart_teleport(10, [10])


def test_argument_validation(graph):
    n = graph.num_vertices
    with pytest.raises(ValueError, match="teleport"):
        personalized_pagerank(graph, np.ones(n))  # doesn't sum to 1
    with pytest.raises(ValueError, match="shape"):
        personalized_pagerank(graph, np.array([1.0]))
    with pytest.raises(ValueError, match="method"):
        personalized_pagerank(graph, method="push")
    with pytest.raises(ValueError, match="damping"):
        personalized_pagerank(graph, damping=2.0)
