"""Tests for weighted PageRank."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import EdgeList, build_csr, uniform_random_graph
from repro.kernels import pagerank
from repro.kernels.weighted import weighted_out_strength, weighted_pagerank


def weighted_graph(n=500, degree=6, seed=191):
    rng = np.random.default_rng(seed)
    el = uniform_random_graph(n, degree, seed=seed)
    weights = rng.exponential(size=el.num_edges).astype(np.float32) + 0.01
    return build_csr(
        EdgeList(n, el.src, el.dst, weights=weights), dedup=True
    )


@pytest.fixture(scope="module")
def graph():
    return weighted_graph()


def test_out_strength(graph):
    strength = weighted_out_strength(graph)
    assert strength.shape == (graph.num_vertices,)
    assert strength.sum() == pytest.approx(float(graph.weights.sum()), rel=1e-5)


def test_out_strength_requires_weights():
    g = build_csr(uniform_random_graph(100, 4, seed=192))
    with pytest.raises(ValueError, match="weights"):
        weighted_out_strength(g)


def test_negative_weights_rejected():
    el = EdgeList(3, [0, 1], [1, 2], weights=[1.0, -2.0])
    g = build_csr(el, dedup=False)
    with pytest.raises(ValueError, match="non-negative"):
        weighted_pagerank(g)


def test_methods_agree(graph):
    pull = weighted_pagerank(graph, method="pull", tolerance=1e-7)
    dpb = weighted_pagerank(graph, method="dpb", tolerance=1e-7)
    assert pull.converged and dpb.converged
    np.testing.assert_allclose(pull.scores, dpb.scores, rtol=1e-4, atol=1e-9)


def test_matches_networkx_weighted(graph):
    result = weighted_pagerank(graph, method="dpb", tolerance=1e-9)
    G = nx.DiGraph()
    G.add_nodes_from(range(graph.num_vertices))
    for u, v, w in zip(
        graph.edge_sources().tolist(), graph.targets.tolist(), graph.weights.tolist()
    ):
        G.add_edge(u, v, weight=w)
    expected = nx.pagerank(G, alpha=0.85, tol=1e-12, weight="weight")
    for v in range(graph.num_vertices):
        assert result.scores[v] == pytest.approx(expected[v], rel=3e-3, abs=1e-7)


def test_uniform_weights_recover_unweighted(graph):
    # Replace all weights by a constant: weighted == unweighted PageRank.
    from repro.graphs import CSRGraph

    uniform = CSRGraph(
        graph.offsets,
        graph.targets,
        weights=np.ones(graph.num_edges, dtype=np.float32),
        symmetric=graph.symmetric,
    )
    weighted = weighted_pagerank(uniform, tolerance=1e-9)
    unweighted = pagerank(graph, method="pull", tolerance=1e-7)
    np.testing.assert_allclose(
        weighted.scores, unweighted.scores, rtol=1e-3, atol=1e-8
    )


def test_heavy_edge_attracts_mass():
    # 0 -> 1 (tiny weight), 0 -> 2 (huge weight): vertex 2 must outrank 1.
    el = EdgeList(
        3, [0, 0, 1, 2], [1, 2, 0, 0], weights=[0.01, 10.0, 1.0, 1.0]
    )
    g = build_csr(el, dedup=False)
    result = weighted_pagerank(g, tolerance=1e-9)
    assert result.scores[2] > 3 * result.scores[1]


def test_validation(graph):
    with pytest.raises(ValueError, match="method"):
        weighted_pagerank(graph, method="cb")
    with pytest.raises(ValueError, match="damping"):
        weighted_pagerank(graph, damping=0.0)
