"""Structural invariants of every kernel's memory trace.

These pin the trace generators to the algorithms they model: the gather
and scatter streams must contain exactly one access per edge, streaming
structures exactly their size in lines, and totals must be consistent
across kernels that process identical propagations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import EdgeList, build_csr, uniform_random_graph
from repro.kernels import make_kernel
from repro.memsim import AccessMode, Stream
from tests.kernels.conftest import TINY_MACHINE


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(2048, 6, seed=241))


def chunks_of(graph, method, **kwargs):
    return list(make_kernel(graph, method, TINY_MACHINE, **kwargs).trace(1))


def test_pull_gather_has_one_access_per_edge(graph):
    chunks = chunks_of(graph, "baseline")
    gathers = [
        c
        for c in chunks
        if c.mode is AccessMode.IRREGULAR and c.stream is Stream.VERTEX_CONTRIB
    ]
    assert sum(c.num_accesses for c in gathers) == graph.num_edges


def test_push_scatter_has_one_access_per_edge(graph):
    chunks = chunks_of(graph, "push")
    scatters = [
        c
        for c in chunks
        if c.mode is AccessMode.IRREGULAR and c.stream is Stream.VERTEX_SUMS
    ]
    assert sum(c.num_accesses for c in scatters) == graph.num_edges


@pytest.mark.parametrize("method", ["pb", "dpb"])
def test_pb_scatter_covers_every_propagation(graph, method):
    chunks = chunks_of(graph, method)
    scatters = [
        c
        for c in chunks
        if c.mode is AccessMode.IRREGULAR and c.stream is Stream.VERTEX_SUMS
    ]
    assert sum(c.num_accesses for c in scatters) == graph.num_edges


def test_cb_edge_stream_lines_match_edge_list_size(graph):
    b = TINY_MACHINE.words_per_line
    kernel = make_kernel(graph, "cb", TINY_MACHINE)
    chunks = list(kernel.trace(1))
    edge_lines = sum(
        c.num_accesses for c in chunks if c.stream is Stream.EDGE_ADJ
    )
    # 2 words per edge, blocks are contiguous in one region: per-block
    # boundaries can add at most one line each.
    expected = 2 * graph.num_edges / b
    assert expected <= edge_lines <= expected + kernel.num_blocks + 1


@pytest.mark.parametrize("method", ["pb", "dpb"])
def test_bin_writes_are_all_streaming(graph, method):
    chunks = chunks_of(graph, method)
    bin_writes = [c for c in chunks if c.stream is Stream.BIN_DATA and c.write]
    assert bin_writes
    assert all(c.streaming_store for c in bin_writes)
    assert all(c.mode is AccessMode.SEQUENTIAL for c in bin_writes)


def test_dpb_bin_writes_half_of_pb(graph):
    pb_lines = sum(
        c.num_accesses
        for c in chunks_of(graph, "pb")
        if c.stream is Stream.BIN_DATA and c.write
    )
    dpb_lines = sum(
        c.num_accesses
        for c in chunks_of(graph, "dpb")
        if c.stream is Stream.BIN_DATA and c.write
    )
    assert dpb_lines == pytest.approx(pb_lines / 2, rel=0.1)


def test_all_line_addresses_nonnegative(graph):
    for method in ("baseline", "push", "cb", "pb", "dpb"):
        for chunk in chunks_of(graph, method):
            if chunk.num_accesses:
                assert chunk.lines.min() >= 0, method


@given(n=st.integers(2, 120), seed=st.integers(0, 30))
@settings(max_examples=25, deadline=None)
def test_property_gather_count_equals_edges(n, seed):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(0, 5 * n))
    g = build_csr(
        EdgeList(
            n,
            rng.integers(0, n, size=m).astype(np.int32),
            rng.integers(0, n, size=m).astype(np.int32),
        ),
        dedup=False,
    )
    chunks = list(make_kernel(g, "baseline", TINY_MACHINE).trace(1))
    gathers = sum(
        c.num_accesses
        for c in chunks
        if c.mode is AccessMode.IRREGULAR and c.stream is Stream.VERTEX_CONTRIB
    )
    assert gathers == g.num_edges
