"""Unit tests for :mod:`repro.utils`."""

import numpy as np
import pytest

from repro.utils import (
    Timer,
    as_generator,
    check_array_dtype,
    check_nonnegative,
    check_positive,
    check_power_of_two,
    check_probability,
    format_series,
    format_table,
    spawn_child,
)


def test_as_generator_passthrough():
    rng = np.random.default_rng(0)
    assert as_generator(rng) is rng


def test_as_generator_seed_determinism():
    a = as_generator(5).integers(0, 100, 10)
    b = as_generator(5).integers(0, 100, 10)
    np.testing.assert_array_equal(a, b)


def test_spawn_child_independent_streams():
    parent1 = as_generator(1)
    parent2 = as_generator(1)
    c0 = spawn_child(parent1, 0)
    c1 = spawn_child(parent2, 1)
    assert c0.integers(0, 1 << 30) != c1.integers(0, 1 << 30)


def test_check_positive():
    check_positive("x", 1)
    with pytest.raises(ValueError, match="x must be positive"):
        check_positive("x", 0)


def test_check_nonnegative():
    check_nonnegative("x", 0)
    with pytest.raises(ValueError):
        check_nonnegative("x", -1)


def test_check_power_of_two():
    check_power_of_two("x", 64)
    for bad in (0, -2, 3, 2.0):
        with pytest.raises(ValueError):
            check_power_of_two("x", bad)


def test_check_probability():
    check_probability("p", 0.5)
    with pytest.raises(ValueError):
        check_probability("p", 1.5)


def test_check_array_dtype():
    check_array_dtype("a", np.zeros(3, dtype=np.int32), np.int32)
    with pytest.raises(TypeError):
        check_array_dtype("a", np.zeros(3, dtype=np.int64), np.int32)


def test_format_table_alignment_and_title():
    text = format_table(["name", "value"], [["a", 1.5], ["bb", 20.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert "1.500" in text
    assert "20.00" in text


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError, match="cells"):
        format_table(["a", "b"], [[1]])


def test_format_table_small_and_large_values():
    text = format_table(["v"], [[1e-6], [12345.6], [0.0]])
    assert "1.000e-06" in text
    assert "12,345.6" in text


def test_format_series():
    text = format_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [1.0, 2.0]})
    assert "s1" in text and "s2" in text
    assert text.splitlines()[-1].startswith("2")


def test_format_series_rejects_length_mismatch():
    with pytest.raises(ValueError, match="length"):
        format_series("x", [1, 2], {"s": [0.1]})


def test_timer_measures_elapsed():
    with Timer() as t:
        sum(range(10000))
    assert t.elapsed > 0
