"""Unit tests for :mod:`repro.gbsp.program`."""

import numpy as np
import pytest

from repro.gbsp import COMBINERS, VertexProgram


def dummy_program(combine="add"):
    return VertexProgram(
        scatter=lambda values: values,
        combine=combine,
        apply=lambda values, acc, received: values,
        initial=lambda n: np.zeros(n),
    )


def test_combiners_registry():
    assert set(COMBINERS) == {"add", "min", "max"}
    ufunc, identity = COMBINERS["min"]
    assert ufunc is np.minimum
    assert identity == np.inf


def test_program_exposes_combiner():
    program = dummy_program("max")
    assert program.combiner is np.maximum
    assert program.identity == -np.inf


def test_rejects_unknown_combiner():
    with pytest.raises(ValueError, match="combine"):
        dummy_program("mul")


def test_identity_values_are_neutral():
    for name, (ufunc, identity) in COMBINERS.items():
        x = np.array([3.0, -2.0, 0.5])
        np.testing.assert_array_equal(ufunc(x, identity), x)
