"""GBSP algorithms validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.gbsp import bfs_levels, connected_components, reachable_from
from repro.graphs import EdgeList, build_csr, uniform_random_graph, web_crawl_graph


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(800, 3, seed=111))


@pytest.fixture(scope="module")
def nx_graph(graph):
    G = nx.Graph()
    G.add_nodes_from(range(graph.num_vertices))
    G.add_edges_from(zip(graph.edge_sources().tolist(), graph.targets.tolist()))
    return G


@pytest.mark.parametrize("backend", ["push", "pb"])
def test_connected_components_match_networkx(graph, nx_graph, backend):
    labels = connected_components(graph, backend=backend)
    for component in nx.connected_components(nx_graph):
        expected = min(component)
        assert all(labels[v] == expected for v in component)


def test_component_count(graph, nx_graph):
    labels = connected_components(graph)
    assert len(set(labels.tolist())) == nx.number_connected_components(nx_graph)


@pytest.mark.parametrize("backend", ["push", "pb"])
def test_bfs_levels_match_networkx(graph, nx_graph, backend):
    levels = bfs_levels(graph, 0, backend=backend)
    expected = nx.single_source_shortest_path_length(nx_graph, 0)
    for v, d in expected.items():
        assert levels[v] == d
    unreachable = set(range(graph.num_vertices)) - set(expected)
    assert all(np.isinf(levels[v]) for v in unreachable)


def test_bfs_source_validation(graph):
    with pytest.raises(ValueError, match="source"):
        bfs_levels(graph, graph.num_vertices)


def test_reachable_from(graph, nx_graph):
    mask = reachable_from(graph, 0)
    expected = nx.node_connected_component(nx_graph, 0)
    assert set(np.flatnonzero(mask).tolist()) == expected


def test_bfs_on_path_graph():
    n = 10
    el = EdgeList(n, list(range(n - 1)) + list(range(1, n)),
                  list(range(1, n)) + list(range(n - 1)))
    g = build_csr(el, symmetric=True)
    levels = bfs_levels(g, 0)
    np.testing.assert_array_equal(levels, np.arange(n))


def test_cc_on_two_cliques():
    el = EdgeList(
        6,
        [0, 1, 2, 0, 3, 4, 5, 3],
        [1, 2, 0, 2, 4, 5, 3, 5],
    )
    g = build_csr(el, symmetrize=True)
    labels = connected_components(g)
    assert labels[:3].tolist() == [0, 0, 0]
    assert labels[3:].tolist() == [3, 3, 3]


def test_cc_on_directed_web_graph_runs():
    g = build_csr(web_crawl_graph(2000, 4, seed=112))
    labels = connected_components(g)
    assert labels.shape == (2000,)
    assert (labels <= np.arange(2000)).all()  # labels only decrease
