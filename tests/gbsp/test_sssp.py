"""Weighted SSSP on the GBSP model, validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.gbsp import VertexProgram, sssp_distances
from repro.graphs import EdgeList, build_csr, uniform_random_graph


def weighted_graph(n=400, degree=5, seed=211):
    rng = np.random.default_rng(seed)
    el = uniform_random_graph(n, degree, seed=seed, symmetric=False)
    weights = rng.uniform(0.1, 5.0, size=el.num_edges).astype(np.float32)
    return build_csr(EdgeList(n, el.src, el.dst, weights=weights), dedup=True)


@pytest.fixture(scope="module")
def graph():
    return weighted_graph()


@pytest.fixture(scope="module")
def nx_graph(graph):
    G = nx.DiGraph()
    G.add_nodes_from(range(graph.num_vertices))
    for u, v, w in zip(
        graph.edge_sources().tolist(), graph.targets.tolist(), graph.weights.tolist()
    ):
        G.add_edge(u, v, weight=w)
    return G


@pytest.mark.parametrize("backend", ["push", "pb"])
def test_sssp_matches_dijkstra(graph, nx_graph, backend):
    distances = sssp_distances(graph, 0, backend=backend)
    expected = nx.single_source_dijkstra_path_length(nx_graph, 0)
    for v, d in expected.items():
        assert distances[v] == pytest.approx(d, rel=1e-5)
    unreachable = set(range(graph.num_vertices)) - set(expected)
    assert all(np.isinf(distances[v]) for v in unreachable)


def test_backends_agree(graph):
    a = sssp_distances(graph, 7, backend="push")
    b = sssp_distances(graph, 7, backend="pb")
    np.testing.assert_allclose(a, b, rtol=1e-9)


def test_source_distance_zero(graph):
    distances = sssp_distances(graph, 5)
    assert distances[5] == 0.0


def test_sssp_on_weighted_path():
    el = EdgeList(4, [0, 1, 2], [1, 2, 3], weights=[1.5, 2.5, 4.0])
    g = build_csr(el, dedup=False)
    distances = sssp_distances(g, 0)
    np.testing.assert_allclose(distances, [0.0, 1.5, 4.0, 8.0])


def test_sssp_picks_cheaper_detour():
    # 0 -> 2 direct costs 10; 0 -> 1 -> 2 costs 3.
    el = EdgeList(3, [0, 0, 1], [2, 1, 2], weights=[10.0, 1.0, 2.0])
    g = build_csr(el, dedup=False)
    distances = sssp_distances(g, 0)
    assert distances[2] == pytest.approx(3.0)


def test_requires_weights():
    g = build_csr(uniform_random_graph(50, 3, seed=212))
    with pytest.raises(ValueError, match="weighted"):
        sssp_distances(g, 0)


def test_source_validated(graph):
    with pytest.raises(ValueError, match="source"):
        sssp_distances(graph, -1)


def test_edge_op_validation():
    with pytest.raises(ValueError, match="edge_op"):
        VertexProgram(
            scatter=lambda v: v,
            combine="min",
            apply=lambda v, a, r: v,
            initial=lambda n: np.zeros(n),
            edge_op="xor",
        )


def test_edge_op_requires_weighted_graph():
    from repro.gbsp import run_superstep

    g = build_csr(uniform_random_graph(20, 3, seed=213))
    program = VertexProgram(
        scatter=lambda v: v,
        combine="min",
        apply=lambda v, a, r: v,
        initial=lambda n: np.zeros(n),
        edge_op="add",
    )
    with pytest.raises(ValueError, match="edge weights"):
        run_superstep(g, program, np.zeros(20), np.ones(20, dtype=bool))


def test_mul_edge_op_weighted_reachability():
    """edge_op='mul' with max-combine computes best path *reliability*."""
    from repro.gbsp import run_until_quiescent

    el = EdgeList(3, [0, 0, 1], [2, 1, 2], weights=[0.1, 0.9, 0.9])
    g = build_csr(el, dedup=False)

    def initial(n):
        values = np.zeros(n)
        values[0] = 1.0
        return values

    program = VertexProgram(
        scatter=lambda v: v,
        combine="max",
        apply=lambda v, acc, rec: np.where(rec, np.maximum(v, acc), v),
        initial=initial,
        edge_op="mul",
    )
    frontier = np.array([True, False, False])
    values, _ = run_until_quiescent(
        g, program, initial_frontier=frontier, max_supersteps=10
    )
    # Best reliability to 2: via 1 (0.9 * 0.9 = 0.81), not direct (0.1).
    assert values[2] == pytest.approx(0.81)
