"""Tests for the GBSP superstep engine: backend equivalence and traffic."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gbsp import VertexProgram, pagerank_program, run_superstep, superstep_traffic
from repro.graphs import EdgeList, build_csr, uniform_random_graph
from repro.kernels import make_kernel


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(1500, 6, seed=101))


def identity_apply(values, accumulated, received):
    return np.where(received, accumulated, values)


def sum_program():
    return VertexProgram(
        scatter=lambda values: values,
        combine="add",
        apply=identity_apply,
        initial=lambda n: np.ones(n),
    )


def test_push_and_pb_agree_add(graph):
    program = sum_program()
    values = program.initial(graph.num_vertices)
    active = np.ones(graph.num_vertices, dtype=bool)
    out_push, f_push = run_superstep(graph, program, values, active, backend="push")
    out_pb, f_pb = run_superstep(graph, program, values, active, backend="pb")
    np.testing.assert_allclose(out_push, out_pb, rtol=1e-12)
    np.testing.assert_array_equal(f_push, f_pb)


@pytest.mark.parametrize("combine", ["min", "max"])
def test_push_and_pb_agree_extrema(graph, combine):
    rng = np.random.default_rng(0)
    start = rng.normal(size=graph.num_vertices)
    program = VertexProgram(
        scatter=lambda values: values,
        combine=combine,
        apply=identity_apply,
        initial=lambda n: start,
    )
    active = rng.random(graph.num_vertices) < 0.4
    out_push, _ = run_superstep(graph, program, start, active, backend="push")
    out_pb, _ = run_superstep(graph, program, start, active, backend="pb")
    np.testing.assert_allclose(out_push, out_pb, rtol=1e-12)


def test_sum_superstep_equals_degree_weighted_sum(graph):
    """With scatter=identity and add-combine, the accumulator is the sum of
    active in-neighbor values — checked against an explicit loop."""
    rng = np.random.default_rng(1)
    values = rng.random(graph.num_vertices)
    active = rng.random(graph.num_vertices) < 0.5
    program = VertexProgram(
        scatter=lambda v: v,
        combine="add",
        apply=lambda v, acc, rec: np.where(rec, acc, 0.0),
        initial=lambda n: values,
    )
    out, _ = run_superstep(graph, program, values, active, backend="pb")
    expected = np.zeros(graph.num_vertices)
    for u, v in zip(graph.edge_sources(), graph.targets):
        if active[u]:
            expected[v] += values[u]
    np.testing.assert_allclose(out, expected, rtol=1e-9, atol=1e-12)


def test_pagerank_program_matches_kernel(graph):
    program = pagerank_program(graph)
    values = program.initial(graph.num_vertices)
    for _ in range(3):
        values, _ = run_superstep(
            graph, program, values, np.ones(graph.num_vertices, bool), backend="pb"
        )
    expected = make_kernel(graph, "baseline").run(3)
    np.testing.assert_allclose(values, expected, rtol=2e-4, atol=1e-9)


def test_frontier_is_changed_vertices(graph):
    program = sum_program()
    values = program.initial(graph.num_vertices)
    active = np.zeros(graph.num_vertices, dtype=bool)
    # No active vertices: nothing changes, frontier empties.
    out, frontier = run_superstep(graph, program, values, active)
    np.testing.assert_array_equal(out, values)
    assert not frontier.any()


def test_engine_validates_inputs(graph):
    program = sum_program()
    values = program.initial(graph.num_vertices)
    with pytest.raises(ValueError, match="backend"):
        run_superstep(graph, program, values, values > 0, backend="pull")
    with pytest.raises(ValueError, match="active"):
        run_superstep(graph, program, values, np.ones(3, bool))
    bad_scatter = VertexProgram(
        scatter=lambda v: v[:2],
        combine="add",
        apply=identity_apply,
        initial=lambda n: np.zeros(n),
    )
    with pytest.raises(ValueError, match="scatter"):
        run_superstep(graph, bad_scatter, values, values >= 0)


def test_superstep_traffic_pb_beats_push_on_large_graph():
    big = build_csr(uniform_random_graph(65536, 8, seed=102))
    active = np.ones(big.num_vertices, dtype=bool)
    push = superstep_traffic(big, active, backend="push")
    pb = superstep_traffic(big, active, backend="pb")
    assert pb.total_requests < push.total_requests


def test_superstep_traffic_validates_backend(graph):
    with pytest.raises(ValueError, match="backend"):
        superstep_traffic(graph, np.ones(graph.num_vertices, bool), backend="cbx")


@given(seed=st.integers(0, 60), combine=st.sampled_from(["add", "min", "max"]))
@settings(max_examples=40, deadline=None)
def test_property_backends_equivalent(seed, combine):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 80))
    m = int(rng.integers(0, 300))
    g = build_csr(
        EdgeList(
            n,
            rng.integers(0, n, size=m).astype(np.int32),
            rng.integers(0, n, size=m).astype(np.int32),
        )
    )
    start = rng.normal(size=n)
    program = VertexProgram(
        scatter=lambda v: v * 2.0 - 1.0,
        combine=combine,
        apply=lambda v, acc, rec: np.where(rec, acc, v),
        initial=lambda size: start,
    )
    active = rng.random(n) < 0.6
    out_push, _ = run_superstep(g, program, start, active, backend="push")
    out_pb, _ = run_superstep(g, program, start, active, backend="pb")
    np.testing.assert_allclose(out_push, out_pb, rtol=1e-9, atol=1e-12)
