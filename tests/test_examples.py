"""Smoke-run every ``examples/`` script at tiny scale.

The examples double as executable documentation; this module keeps them
executable.  Each script honours ``REPRO_EXAMPLE_SCALE`` (a workload
multiplier) so the whole directory runs in seconds, and each runs in a
subprocess — exactly how a reader would run it — so import-time
regressions and interpreter-level crashes are caught too.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "examples")
SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_every_example_is_covered():
    # A new example lands in the parametrized run automatically; this
    # guards against the directory going empty or moving.
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_EXAMPLE_SCALE"] = "0.05"
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        env=env,
        timeout=240,
    )
    assert proc.returncode == 0, (
        f"{name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{name} printed nothing"
