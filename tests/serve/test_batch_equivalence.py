"""Differential suite: coalesced multi-source runs vs serial solves.

The serve layer's correctness rests on one contract: answering queries
as a batch (:func:`repro.kernels.personalized.multi_personalized_pagerank`)
is *bit-identical* to answering them one at a time
(:func:`~repro.kernels.personalized.personalized_pagerank`).  Today that
holds by construction (both paths share one iteration loop); this suite
pins the contract so a future vectorized batch path must preserve it,
across methods (pull vs dpb), kernel tiers (numpy vs compiled), graph
shapes/scales, and randomized seed sets — and end-to-end through the
asyncio server.
"""

import asyncio

import numpy as np
import pytest

from repro.compiled import available as compiled_available
from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import (
    multi_personalized_pagerank,
    personalized_pagerank,
    restart_teleport,
)
from repro.serve import BatchPolicy, PPRServer, ServeConfig

requires_backend = pytest.mark.skipif(
    not compiled_available(),
    reason="no compiled backend (install the 'fast' extra or a C compiler)",
)

TIERS = ["numpy", pytest.param("compiled", marks=requires_backend)]


def random_seed_sets(num_vertices, *, count, rng):
    """Randomized distinct seed sets of size 1..4."""
    sets = []
    for _ in range(count):
        size = int(rng.integers(1, 5))
        sets.append(
            np.sort(rng.choice(num_vertices, size=size, replace=False))
        )
    return sets


@pytest.mark.parametrize("method", ["pull", "dpb"])
@pytest.mark.parametrize("tier", TIERS)
def test_batched_equals_serial_bit_for_bit(any_graph, method, tier):
    rng = np.random.default_rng(11)
    seed_sets = random_seed_sets(any_graph.num_vertices, count=6, rng=rng)
    teleports = [
        restart_teleport(any_graph.num_vertices, seeds) for seeds in seed_sets
    ]
    batched = multi_personalized_pagerank(
        any_graph, teleports, method=method, tier=tier
    )
    assert len(batched) == len(seed_sets)
    for teleport, result in zip(teleports, batched):
        serial = personalized_pagerank(
            any_graph, teleport, method=method, tier=tier
        )
        assert result.iterations == serial.iterations
        assert result.converged == serial.converged
        assert np.array_equal(result.scores, serial.scores)


@pytest.mark.parametrize("scale", [64, 512, 2048])
def test_batched_equals_serial_across_scales(scale):
    graph = build_csr(uniform_random_graph(scale, 6, seed=scale))
    rng = np.random.default_rng(scale)
    seed_sets = random_seed_sets(graph.num_vertices, count=4, rng=rng)
    teleports = [restart_teleport(graph.num_vertices, s) for s in seed_sets]
    for teleport, result in zip(
        teleports, multi_personalized_pagerank(graph, teleports)
    ):
        serial = personalized_pagerank(graph, teleport)
        assert np.array_equal(result.scores, serial.scores)


@requires_backend
def test_compiled_tier_matches_numpy_tier_batched(any_graph):
    rng = np.random.default_rng(7)
    teleports = [
        restart_teleport(any_graph.num_vertices, s)
        for s in random_seed_sets(any_graph.num_vertices, count=4, rng=rng)
    ]
    numpy_results = multi_personalized_pagerank(
        any_graph, teleports, method="dpb", tier="numpy"
    )
    compiled_results = multi_personalized_pagerank(
        any_graph, teleports, method="dpb", tier="compiled"
    )
    for a, b in zip(numpy_results, compiled_results):
        assert np.array_equal(a.scores, b.scores)


def test_mixed_batch_convergence_is_per_query(random_graph):
    """Each query in a batch converges on its own schedule."""
    n = random_graph.num_vertices
    teleports = [restart_teleport(n, [0]), restart_teleport(n, list(range(16)))]
    results = multi_personalized_pagerank(random_graph, teleports)
    for teleport, result in zip(teleports, results):
        serial = personalized_pagerank(random_graph, teleport)
        assert result.iterations == serial.iterations


def test_server_coalesced_answers_equal_serial(random_graph):
    """End to end: concurrent queries through the asyncio server return
    exactly the serial kernel's scores and a deterministic top-k."""
    config = ServeConfig(
        policy=BatchPolicy(window_seconds=0.01, max_batch=8), top_k=5
    )
    rng = np.random.default_rng(23)
    seed_sets = random_seed_sets(random_graph.num_vertices, count=8, rng=rng)

    async def scenario():
        async with PPRServer(random_graph, config) as server:
            return await asyncio.gather(
                *(server.query(list(seeds)) for seeds in seed_sets)
            )

    results = asyncio.run(scenario())
    for seeds, result in zip(seed_sets, results):
        teleport = restart_teleport(random_graph.num_vertices, seeds)
        serial = personalized_pagerank(
            random_graph,
            teleport,
            method=config.method,
            damping=config.damping,
            tolerance=config.tolerance,
            max_iterations=config.max_iterations,
        )
        assert np.array_equal(result.scores, serial.scores)
        # Deterministic ranking: descending score, vertex id on ties.
        expected = sorted(
            range(random_graph.num_vertices),
            key=lambda v: (-float(serial.scores[v]), v),
        )[:5]
        assert [v for v, _ in result.top] == expected


def test_duplicate_queries_coalesce_to_one_solve(random_graph):
    """Identical concurrent queries share one kernel run and one answer."""
    config = ServeConfig(policy=BatchPolicy(window_seconds=0.01, max_batch=8))

    async def scenario():
        async with PPRServer(random_graph, config) as server:
            results = await asyncio.gather(
                *(server.query([3, 5]) for _ in range(6))
            )
            return results, server.stats()

    results, stats = asyncio.run(scenario())
    reference = results[0].scores
    for result in results:
        assert np.array_equal(result.scores, reference)
    assert stats.coalesced >= 5 - (stats.batches - 1)
    assert stats.batches <= 2
