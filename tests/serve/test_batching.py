"""Property tests for the coalescing policy (pure reference semantics).

:func:`repro.serve.batching.plan_batches` is the policy's executable
specification; these hypothesis sweeps pin its invariants so the live
asyncio queue (tested in ``test_chaos.py`` through the server) has a
fixed contract to match.
"""

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.batching import BatchPolicy, BatchQueue, plan_batches


def arrivals_strategy():
    """Non-decreasing arrival times built from non-negative gaps."""
    return st.lists(
        st.floats(min_value=0.0, max_value=0.01, allow_nan=False), max_size=40
    ).map(
        lambda gaps: [sum(gaps[: i + 1]) for i in range(len(gaps))]
    )


policy_strategy = st.builds(
    BatchPolicy,
    window_seconds=st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
    max_batch=st.integers(min_value=1, max_value=8),
)


@given(arrivals=arrivals_strategy(), policy=policy_strategy)
@settings(max_examples=200, deadline=None)
def test_every_request_in_exactly_one_batch_in_order(arrivals, policy):
    batches = plan_batches(arrivals, policy)
    flattened = [index for batch in batches for index in batch]
    assert flattened == list(range(len(arrivals)))
    assert all(batch for batch in batches)


@given(arrivals=arrivals_strategy(), policy=policy_strategy)
@settings(max_examples=200, deadline=None)
def test_occupancy_never_exceeds_max_batch(arrivals, policy):
    for batch in plan_batches(arrivals, policy):
        assert len(batch) <= policy.max_batch


@given(arrivals=arrivals_strategy(), policy=policy_strategy)
@settings(max_examples=200, deadline=None)
def test_members_arrive_within_the_open_window(arrivals, policy):
    for batch in plan_batches(arrivals, policy):
        opened = arrivals[batch[0]]
        for index in batch:
            assert arrivals[index] - opened <= policy.window_seconds + 1e-12


@given(arrivals=arrivals_strategy(), policy=policy_strategy)
@settings(max_examples=200, deadline=None)
def test_batches_are_maximal(arrivals, policy):
    """A new batch only opens because the last one closed for a reason."""
    batches = plan_batches(arrivals, policy)
    for previous, current in zip(batches, batches[1:]):
        full = len(previous) == policy.max_batch
        expired = (
            arrivals[current[0]] - arrivals[previous[0]] > policy.window_seconds
        )
        assert full or expired


def test_zero_window_batches_only_simultaneous_arrivals():
    policy = BatchPolicy(window_seconds=0.0, max_batch=8)
    batches = plan_batches([0.0, 0.0, 0.1, 0.2, 0.2], policy)
    assert batches == [[0, 1], [2], [3, 4]]


def test_rejects_decreasing_arrivals():
    with pytest.raises(ValueError, match="non-decreasing"):
        plan_batches([1.0, 0.5], BatchPolicy())


def test_policy_validation():
    with pytest.raises(ValueError, match="window_seconds"):
        BatchPolicy(window_seconds=-1.0)
    with pytest.raises(ValueError, match="max_batch"):
        BatchPolicy(max_batch=0)


def test_batch_queue_caps_and_drains():
    """The live queue honours max_batch and drains fully after close."""

    async def scenario():
        queue = BatchQueue(BatchPolicy(window_seconds=0.001, max_batch=3))
        for item in range(7):
            queue.put(item)
        queue.close()
        seen = []
        while True:
            batch = await queue.next_batch()
            if not batch:
                break
            assert len(batch) <= 3
            seen.extend(batch)
        return seen

    assert asyncio.run(scenario()) == list(range(7))


def test_batch_queue_rejects_put_after_close():
    async def scenario():
        queue = BatchQueue(BatchPolicy())
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.put(1)

    asyncio.run(scenario())
