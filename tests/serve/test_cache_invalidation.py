"""Property tests: cache invalidation under edge-update sequences.

The serve cache's safety claim is absolute: after *any* sequence of
edge updates, a served answer equals what a cold server on the updated
graph would compute — bit for bit.  Entries carried forward across an
update (seeds provably outside the dirty frontier) must be exact, and
stale entries must never survive.  Hypothesis drives randomized update
sequences against both the structural rule
(:func:`repro.serve.updates.dirty_ancestors`) and the full server loop.
"""

import asyncio
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import pagerank_delta, personalized_pagerank, restart_teleport
from repro.parallel.shm import graph_fingerprint
from repro.serve import (
    BatchPolicy,
    EdgeUpdate,
    PPRServer,
    ServeCache,
    ServeConfig,
    apply_edge_updates,
    dirty_ancestors,
    update_residual,
)
from repro.kernels.delta import delta_repropagate

N = 48  # small world: reachability frontiers stay non-trivial


def base_graph(seed: int):
    return build_csr(uniform_random_graph(N, 3, seed=seed, symmetric=False))


updates_strategy = st.lists(
    st.builds(
        EdgeUpdate,
        src=st.integers(min_value=0, max_value=N - 1),
        dst=st.integers(min_value=0, max_value=N - 1),
        remove=st.booleans(),
    ),
    min_size=1,
    max_size=8,
)


# ----------------------------------------------------------------------
# apply_edge_updates: deterministic, reversible rebuilds
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 50), updates=updates_strategy)
@settings(max_examples=60, deadline=None)
def test_empty_update_batch_is_identity(seed, updates):
    graph, _ = apply_edge_updates(base_graph(seed), updates)
    again, report = apply_edge_updates(graph, [])
    assert report.added == report.removed == 0
    assert graph_fingerprint(again) == graph_fingerprint(graph)


@given(
    seed=st.integers(0, 50),
    src=st.integers(0, N - 1),
    dst=st.integers(0, N - 1),
)
@settings(max_examples=60, deadline=None)
def test_add_then_remove_round_trips(seed, src, dst):
    graph = base_graph(seed)
    added, report = apply_edge_updates(graph, [EdgeUpdate(src, dst)])
    removed, _ = apply_edge_updates(added, [EdgeUpdate(src, dst, remove=True)])
    if report.added:  # edge was genuinely new: removal restores the graph
        assert graph_fingerprint(removed) == graph_fingerprint(graph)
    else:  # edge already existed: the add was a no-op
        assert report.noops == 1
        assert graph_fingerprint(added) == graph_fingerprint(graph)


def test_updates_can_grow_the_vertex_range():
    graph = base_graph(0)
    grown, report = apply_edge_updates(graph, [EdgeUpdate(2, N + 3)])
    assert report.grew
    assert grown.num_vertices == N + 4
    assert N + 3 in set(grown.neighbors(2).tolist())


def test_weighted_graphs_are_rejected():
    import numpy as np

    from repro.graphs.csr import CSRGraph

    graph = CSRGraph(
        np.array([0, 1]), np.array([0]), weights=np.array([1.0], dtype=np.float32)
    )
    with pytest.raises(ValueError, match="weighted"):
        apply_edge_updates(graph, [])


# ----------------------------------------------------------------------
# dirty_ancestors: the structural carry-forward rule is sound
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 30), updates=updates_strategy)
@settings(max_examples=40, deadline=None)
def test_clean_seeds_keep_bit_identical_scores(seed, updates):
    """Any seed outside the dirty frontier solves identically pre/post."""
    old = base_graph(seed)
    new, report = apply_edge_updates(old, updates)
    dirty = dirty_ancestors(old, new, report.changed_sources)
    clean = np.flatnonzero(~dirty)[:6]
    for vertex in clean:
        before = personalized_pagerank(old, restart_teleport(N, [int(vertex)]))
        after = personalized_pagerank(new, restart_teleport(N, [int(vertex)]))
        assert np.array_equal(before.scores, after.scores)


def test_changed_sources_are_always_dirty():
    old = base_graph(1)
    new, report = apply_edge_updates(old, [EdgeUpdate(5, 7, remove=True), EdgeUpdate(5, 9)])
    if report.changed_sources:
        dirty = dirty_ancestors(old, new, report.changed_sources)
        assert all(dirty[s] for s in report.changed_sources)


# ----------------------------------------------------------------------
# the full serve loop: served top-k == cold recompute, always
# ----------------------------------------------------------------------
def _cold_answers(graph, seed_sets, config):
    """Reference: a fresh cache-less server on the given graph."""

    async def scenario():
        async with PPRServer(graph, config) as server:
            return await asyncio.gather(
                *(server.query(list(s)) for s in seed_sets)
            )

    return asyncio.run(scenario())


@given(
    seed=st.integers(0, 20),
    updates=updates_strategy,
    query_seed=st.integers(0, 1000),
)
@settings(max_examples=25, deadline=None)
def test_served_equals_cold_recompute_after_updates(seed, updates, query_seed):
    """For any update sequence: warm server == cold server, bit for bit.

    A stale entry surviving its dirty frontier, or an inexact
    carry-forward, would make some warm answer differ from the cold
    one — this property rules both out.
    """
    graph = base_graph(seed)
    config = ServeConfig(policy=BatchPolicy(window_seconds=0.0, max_batch=4))
    rng = np.random.default_rng(query_seed)
    seed_sets = [
        tuple(
            sorted(
                int(v)
                for v in rng.choice(N, size=int(rng.integers(1, 4)), replace=False)
            )
        )
        for _ in range(5)
    ]

    async def scenario(cache):
        async with PPRServer(graph, config, cache=cache) as server:
            old_fp = server.graph_fp
            await asyncio.gather(*(server.query(list(s)) for s in seed_sets))
            report = await server.apply_updates(updates)
            changed = server.graph_fp != old_fp
            warm = await asyncio.gather(
                *(server.query(list(s)) for s in seed_sets)
            )
            return warm, report, changed, server.graph, server.stats()

    with tempfile.TemporaryDirectory() as directory:
        warm, report, changed, new_graph, stats = asyncio.run(
            scenario(ServeCache(directory, shards=2))
        )
    cold = _cold_answers(new_graph, seed_sets, config)
    for warm_result, cold_result in zip(warm, cold):
        assert np.array_equal(warm_result.scores, cold_result.scores)
        assert warm_result.top == cold_result.top
    if changed:
        # Invalidation accounting covers every pre-update entry.
        assert stats.entries_carried + stats.entries_invalidated == len(
            set(seed_sets)
        )
    else:
        # All-no-op batch: the fingerprint is unchanged, entries simply
        # stay valid — nothing to carry or drop.
        assert stats.entries_carried == stats.entries_invalidated == 0


def test_carried_entries_hit_without_recompute():
    """Seeds provably outside the dirty frontier stay warm across updates."""
    graph = base_graph(2)
    config = ServeConfig(policy=BatchPolicy(window_seconds=0.0, max_batch=4))

    async def scenario(cache):
        async with PPRServer(graph, config, cache=cache) as server:
            await asyncio.gather(
                *(server.query([v]) for v in range(N))
            )
            report = await server.apply_updates([EdgeUpdate(0, 1)])
            dirty = dirty_ancestors(
                server.graph, server.graph, report.changed_sources
            )
            results = await asyncio.gather(
                *(server.query([v]) for v in range(N))
            )
            return results, dirty, server.stats()

    with tempfile.TemporaryDirectory() as directory:
        results, dirty, stats = asyncio.run(scenario(ServeCache(directory)))
    for vertex, result in enumerate(results):
        if not dirty[vertex]:
            assert result.from_cache, f"clean seed {vertex} missed the cache"
        else:
            assert not result.from_cache, f"dirty seed {vertex} hit stale cache"
    assert stats.entries_carried == int((~dirty).sum())
    assert stats.entries_invalidated == int(dirty.sum())


def test_grown_graph_invalidates_everything():
    graph = base_graph(3)
    config = ServeConfig(policy=BatchPolicy(window_seconds=0.0, max_batch=4))

    async def scenario(cache):
        async with PPRServer(graph, config, cache=cache) as server:
            await asyncio.gather(*(server.query([v]) for v in range(8)))
            await server.apply_updates([EdgeUpdate(0, N + 1)])
            results = await asyncio.gather(
                *(server.query([v]) for v in range(8))
            )
            return results, server.stats()

    with tempfile.TemporaryDirectory() as directory:
        results, stats = asyncio.run(scenario(ServeCache(directory)))
    assert all(not r.from_cache for r in results)
    assert stats.entries_carried == 0
    assert stats.entries_invalidated == 8


# ----------------------------------------------------------------------
# maintained global scores track the scratch fixed point
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 20), updates=updates_strategy)
@settings(max_examples=25, deadline=None)
def test_delta_maintained_globals_match_scratch(seed, updates):
    old = base_graph(seed)
    new, _ = apply_edge_updates(old, updates)
    tolerance = 1e-9
    baseline = pagerank_delta(old, tolerance=tolerance).scores
    refreshed, pending = update_residual(new, baseline)
    maintained = delta_repropagate(
        new, refreshed, pending, tolerance=tolerance
    ).scores
    scratch = pagerank_delta(new, tolerance=tolerance).scores
    drift = np.abs(
        maintained.astype(np.float64) - scratch.astype(np.float64)
    ).max()
    assert drift < 50 * tolerance
