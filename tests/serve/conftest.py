"""Fixtures for the serve-tier suites.

Graphs mirror the kernel differential fixtures at smaller scale: the
serve suites run many solves per test (batched vs serial, updated vs
cold), so the graphs stay small enough for the full property sweeps
while still covering directed, symmetric, and high-locality shapes.
"""

import pytest

from repro.graphs import build_csr, uniform_random_graph, web_crawl_graph


@pytest.fixture()
def random_graph():
    return build_csr(uniform_random_graph(512, 6, seed=3))


@pytest.fixture()
def directed_graph():
    return build_csr(uniform_random_graph(384, 5, seed=4, symmetric=False))


@pytest.fixture()
def local_graph():
    return build_csr(web_crawl_graph(512, 5, seed=5, window=64))


@pytest.fixture(params=["random_graph", "directed_graph", "local_graph"])
def any_graph(request):
    return request.getfixturevalue(request.param)
