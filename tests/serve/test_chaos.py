"""Chaos suite: the serve loop under deterministic fault injection.

Reuses :mod:`repro.parallel.faults` seeded fault plans — the same
machinery the resilient sweep engine is tested with — around the
server's batch kernel runs.  The invariant under test is exactly-once
delivery: injected crashes, timeouts, and corrupted results may retry a
batch, but every in-flight query is answered exactly once (one result
*or* one exception, never zero, never two), and every answer that does
arrive is bit-identical to the fault-free solve.
"""

import asyncio

import numpy as np
import pytest

from repro.kernels import personalized_pagerank, restart_teleport
from repro.parallel.faults import FaultPlan
from repro.serve import BatchPolicy, PPRServer, ServeConfig


def chaos_config(plan: FaultPlan) -> ServeConfig:
    return ServeConfig(
        policy=BatchPolicy(window_seconds=0.005, max_batch=4), fault_plan=plan
    )


def test_every_fault_kind_retries_to_the_correct_answer(random_graph):
    """rate=1.0 with max_per_cell=2: every batch faults exactly twice,
    then the third attempt is clean — fully deterministic chaos."""
    for kind in ("crash", "timeout", "corrupt"):
        plan = FaultPlan(seed=7, rate=1.0, kinds=(kind,), max_per_cell=2)

        async def scenario():
            async with PPRServer(random_graph, chaos_config(plan)) as server:
                results = await asyncio.gather(
                    *(server.query([v]) for v in range(6))
                )
                return results, server.stats()

        results, stats = asyncio.run(scenario())
        assert len(results) == 6
        for vertex, result in enumerate(results):
            serial = personalized_pagerank(
                random_graph,
                restart_teleport(random_graph.num_vertices, [vertex]),
                tolerance=1e-8,
            )
            assert np.array_equal(result.scores, serial.scores)
        # Every batch burned exactly max_per_cell faulty attempts.
        assert stats.faults_injected == 2 * stats.batches
        assert stats.retries == stats.faults_injected


def test_mixed_fault_storm_answers_every_query_exactly_once(random_graph):
    """A high-rate mixed plan across many concurrent queries: no query
    is lost, none answered twice, all answers correct."""
    plan = FaultPlan(
        seed=13, rate=0.7, kinds=("crash", "timeout", "corrupt"), max_per_cell=3
    )
    queries = [[v % random_graph.num_vertices, (v * 7 + 1) % random_graph.num_vertices]
               for v in range(0, 24, 2)]
    queries = [sorted(set(q)) for q in queries]

    async def scenario():
        answered = []

        async def one(seeds):
            result = await asyncio.wait_for(
                server.query(seeds), timeout=60.0
            )
            answered.append(tuple(seeds))
            return result

        async with PPRServer(random_graph, chaos_config(plan)) as server:
            results = await asyncio.gather(*(one(q) for q in queries))
            return results, answered, server.stats()

    results, answered, stats = asyncio.run(scenario())
    # Exactly-once: one answer per issued query, in aggregate.
    assert sorted(answered) == sorted(tuple(q) for q in queries)
    assert stats.requests == len(queries)
    for seeds, result in zip(queries, results):
        serial = personalized_pagerank(
            random_graph,
            restart_teleport(random_graph.num_vertices, seeds),
            tolerance=1e-8,
        )
        assert np.array_equal(result.scores, serial.scores)


def test_exhausted_retries_fail_each_query_exactly_once(random_graph):
    """A plan whose faults outlast the retry cap: every request gets the
    failure (an exception is an answer too) — never a hang, never a
    double resolution."""
    plan = FaultPlan(seed=3, rate=1.0, kinds=("crash",), max_per_cell=99)
    config = ServeConfig(
        policy=BatchPolicy(window_seconds=0.005, max_batch=4),
        fault_plan=plan,
        max_batch_retries=2,
    )

    async def scenario():
        async with PPRServer(random_graph, config) as server:
            return await asyncio.gather(
                *(server.query([v]) for v in range(5)),
                return_exceptions=True,
            )

    outcomes = asyncio.run(scenario())
    assert len(outcomes) == 5
    assert all(isinstance(o, RuntimeError) for o in outcomes)
    assert all("attempts" in str(o) for o in outcomes)


def test_faults_do_not_poison_the_cache(random_graph, tmp_path):
    """Corrupt-result injection must never let a poisoned score vector
    reach the cache: warm hits after a fault storm equal clean solves."""
    from repro.serve import ServeCache

    plan = FaultPlan(seed=5, rate=1.0, kinds=("corrupt",), max_per_cell=2)
    cache = ServeCache(str(tmp_path / "cache"))

    async def scenario():
        async with PPRServer(
            random_graph, chaos_config(plan), cache=cache
        ) as server:
            first = await server.query([3, 9])
            warm = await server.query([3, 9])
            return first, warm

    first, warm = asyncio.run(scenario())
    assert warm.from_cache
    serial = personalized_pagerank(
        random_graph,
        restart_teleport(random_graph.num_vertices, [3, 9]),
        tolerance=1e-8,
    )
    assert np.array_equal(first.scores, serial.scores)
    assert np.array_equal(warm.scores, serial.scores)


def test_chaos_coexists_with_updates(random_graph):
    """Fault retries and incremental graph updates interleave safely:
    answers always match the graph the server holds when solving."""
    from repro.serve import EdgeUpdate

    plan = FaultPlan(seed=11, rate=0.5, kinds=("crash", "corrupt"), max_per_cell=2)

    async def scenario():
        async with PPRServer(random_graph, chaos_config(plan)) as server:
            before = await asyncio.gather(
                *(server.query([v]) for v in range(4))
            )
            await server.apply_updates([EdgeUpdate(0, 1), EdgeUpdate(2, 3)])
            after = await asyncio.gather(
                *(server.query([v]) for v in range(4))
            )
            return before, after, server.graph

    before, after, new_graph = asyncio.run(scenario())
    for vertex, result in enumerate(after):
        serial = personalized_pagerank(
            new_graph,
            restart_teleport(new_graph.num_vertices, [vertex]),
            tolerance=1e-8,
        )
        assert np.array_equal(result.scores, serial.scores)
    assert len(before) == len(after) == 4
