"""Shared-memory graph plane: round trips, identity, lifecycle, leaks.

The contract under test (:mod:`repro.parallel.shm`):

* a published graph round-trips bit-exactly through a pickled
  :class:`GraphRef` and a zero-copy attach;
* a ref hashes as its graph (fingerprint proxy), so sweep/checkpoint
  fingerprints are identical with the plane on or off;
* the parent owns teardown — context manager, explicit ``close``, and
  the ``atexit`` guard all unlink, including on SIGINT mid-run and with
  pool workers attached (workers never unlink);
* plan execution through the plane produces byte-identical artifacts.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.graphs.builder import build_csr
from repro.graphs.generators import uniform_random_graph
from repro.obs import events as _events
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    GraphRef,
    GraphStore,
    graph_fingerprint,
    resolve_graph,
)
from repro.parallel.sweep import SweepCell, run_cells
from repro.utils.fingerprint import cell_fingerprint, stable_digest


def _graph(seed=1, n=500, degree=6):
    return build_csr(uniform_random_graph(n, degree, seed=seed))


def _segments():
    try:
        return [n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX)]
    except FileNotFoundError:  # non-Linux: can't scan, tests still pass
        return []


# ----------------------------------------------------------------------
# publish / attach round trip
# ----------------------------------------------------------------------
def test_ref_round_trips_bit_exactly():
    graph = _graph()
    with GraphStore() as store:
        ref = store.publish(graph)
        wire = pickle.loads(pickle.dumps(ref))
        assert "_graph" not in wire.__dict__  # refs never ship array bytes
        attached = wire.materialize()
        assert np.array_equal(attached.offsets, graph.offsets)
        assert np.array_equal(attached.targets, graph.targets)
        assert attached.weights is None
        assert attached.symmetric == graph.symmetric
        # zero-copy views are read-only: a worker cannot corrupt the plane
        with pytest.raises(ValueError):
            attached.targets[0] = 0


def test_weighted_graph_round_trips():
    from repro.graphs.csr import CSRGraph

    base = build_csr(uniform_random_graph(300, 5, seed=3))
    rng = np.random.default_rng(7)
    weights = rng.random(base.num_edges).astype(np.float32)
    weighted = CSRGraph(base.offsets, base.targets, weights=weights)
    with GraphStore() as store:
        ref = store.publish(weighted)
        assert ref.weighted
        attached = pickle.loads(pickle.dumps(ref)).materialize()
        assert np.array_equal(attached.weights, weighted.weights)


def test_publish_is_content_addressed_and_refcounted():
    graph = _graph()
    twin = build_csr(uniform_random_graph(500, 6, seed=1))  # equal content
    with GraphStore() as store:
        ref1 = store.publish(graph)
        ref2 = store.publish(graph)  # same object: id fast path
        ref3 = store.publish(twin)  # equal content: fingerprint dedup
        assert ref1.segment == ref2.segment == ref3.segment
        assert len(store) == 1
        store.release(ref1)
        store.release(ref2)
        assert len(store) == 1  # one reference still held
        store.release(ref3)
        assert len(store) == 0
        assert not _segments()


def test_parent_materialize_is_the_source_graph():
    graph = _graph()
    with GraphStore() as store:
        ref = store.publish(graph)
        assert ref.materialize() is graph  # serial fallback costs nothing


def test_resolve_graph_passthrough():
    graph = _graph()
    assert resolve_graph(graph) is graph
    with GraphStore() as store:
        ref = store.publish(graph)
        assert resolve_graph(ref) is graph


# ----------------------------------------------------------------------
# identity: refs hash as their graph
# ----------------------------------------------------------------------
def test_ref_fingerprints_match_graph_fingerprints():
    graph = _graph()
    with GraphStore() as store:
        ref = store.publish(graph)
        assert stable_digest(ref) == stable_digest(graph)
        by_value = cell_fingerprint(_echo_cell, "k", (graph, 3), {})
        by_ref = cell_fingerprint(_echo_cell, "k", (ref, 3), {})
        assert by_value == by_ref


def test_publish_cell_rewrites_only_graph_args():
    graph = _graph()
    cell = SweepCell(key="k", fn=_echo_cell, args=(graph, 3), kwargs={"x": graph})
    plain = SweepCell(key="p", fn=_echo_cell, args=(1, 2))
    with GraphStore() as store:
        rewritten = store.publish_cell(cell)
        assert isinstance(rewritten.args[0], GraphRef)
        assert rewritten.args[1] == 3
        assert isinstance(rewritten.kwargs["x"], GraphRef)
        assert store.publish_cell(plain) is plain  # untouched: no graphs
        assert len(store) == 1  # both occurrences share one segment


# ----------------------------------------------------------------------
# pool execution: transparent, observable, leak-free
# ----------------------------------------------------------------------
def _echo_cell(graph, scale, x=None):
    graph = resolve_graph(graph)
    return float(graph.num_edges) * scale


def test_pool_run_with_refs_matches_by_value(tmp_path):
    graphs = [_graph(seed=s) for s in (1, 2)]
    cells = [
        SweepCell(key=(s, scale), fn=_echo_cell, args=(graphs[s], scale))
        for s in range(2)
        for scale in (1.0, 2.0)
    ]
    by_value = run_cells(cells, workers=2)
    with _events.collecting() as bus:
        with GraphStore() as store:
            ref_cells = [store.publish_cell(cell) for cell in cells]
            by_ref = run_cells(ref_cells, workers=2, affinity=True)
            # Pool workers have exited by now; forked workers inherit the
            # store's atexit hook and must NOT have unlinked its segments.
            assert len(_segments()) == 2
    assert by_ref == by_value
    fleet = bus.fleet_summary()
    assert fleet["shm"]["published"] == 2
    assert fleet["shm"]["attached"] >= 2  # every worker that touched a graph
    assert fleet["shm"]["evicted"] == 2
    assert fleet["shm"]["peak_resident_graphs"] >= 1
    assert not _segments()


def test_checkpoint_resume_across_shm_modes(tmp_path):
    """A checkpoint written by a by-value run satisfies a by-ref run:
    the fingerprints are mode-independent."""
    from repro.harness.checkpoint import open_checkpoint

    graph = _graph()
    cells = [
        SweepCell(key=("c", scale), fn=_echo_cell, args=(graph, scale))
        for scale in (1.0, 2.0)
    ]
    first = run_cells(
        cells, workers=1, checkpoint=open_checkpoint(str(tmp_path), "shm")
    )
    checkpoint = open_checkpoint(str(tmp_path), "shm")
    with GraphStore() as store:
        ref_cells = [store.publish_cell(cell) for cell in cells]
        stats_holder = []
        from repro.parallel.resilience import SweepStats

        stats = SweepStats()
        second = run_cells(ref_cells, workers=1, checkpoint=checkpoint, stats=stats)
        stats_holder.append(stats)
    assert second == first
    assert stats_holder[0].resumed == len(cells)  # nothing re-executed


# ----------------------------------------------------------------------
# teardown guarantees
# ----------------------------------------------------------------------
def test_close_is_idempotent_and_unlinks():
    graph = _graph()
    store = GraphStore()
    ref = store.publish(graph)
    assert any(ref.segment == name for name in _segments())
    store.close()
    store.close()
    assert not any(ref.segment == name for name in _segments())
    with pytest.raises(RuntimeError):
        store.publish(graph)


_SIGINT_DRIVER = textwrap.dedent(
    """
    import signal, sys, time
    from repro.graphs.builder import build_csr
    from repro.graphs.generators import uniform_random_graph
    from repro.parallel.shm import GraphStore

    store = GraphStore()
    ref = store.publish(build_csr(uniform_random_graph(2000, 8, seed=1)))
    print(ref.segment, flush=True)
    time.sleep(60)  # parent SIGINTs us here; atexit must unlink
    """
)


def test_sigint_mid_plan_leaves_no_orphan_segments():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), os.path.join(os.getcwd(), "src")) if p
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", _SIGINT_DRIVER],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        segment = proc.stdout.readline().strip()
        assert segment.startswith(SEGMENT_PREFIX)
        assert segment in _segments()
        proc.send_signal(signal.SIGINT)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    deadline = time.monotonic() + 10
    while segment in _segments() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert segment not in _segments(), "KeyboardInterrupt leaked a segment"


def test_fault_injected_pool_run_leaks_nothing():
    """Worker crashes (injected) + retries + shm refs: segments all die."""
    from repro.parallel.faults import FaultPlan
    from repro.parallel.resilience import RetryPolicy

    graph = _graph()
    cells = [
        SweepCell(key=("f", scale), fn=_echo_cell, args=(graph, scale))
        for scale in (1.0, 2.0, 3.0, 4.0)
    ]
    plan = FaultPlan.from_string("seed=5,rate=0.4,kinds=crash|corrupt,max=2")
    with GraphStore() as store:
        ref_cells = [store.publish_cell(cell) for cell in cells]
        results = run_cells(
            ref_cells,
            workers=2,
            affinity=True,
            fault_plan=plan,
            policy=RetryPolicy(max_retries=3),
        )
    assert results == {("f", s): graph.num_edges * s for s in (1.0, 2.0, 3.0, 4.0)}
    assert not _segments()


def test_graph_fingerprint_matches_stable_digest():
    graph = _graph()
    assert graph_fingerprint(graph) == stable_digest(graph)
