"""Tests for the fault-tolerant sweep engine (repro.parallel.resilience).

The load-bearing claim is *determinism under chaos*: for any seeded fault
plan, a sweep whose retries cover the plan's per-cell fault budget must
return results bit-identical to a fault-free serial run — recovered
faults may never change a number.  hypothesis drives plans over the whole
(seed, rate, kinds) space; fixed-seed cases pin the pool-mode paths
(worker death, deadline overruns, poisoned results) that property tests
cannot exercise cheaply.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.spans import disable, enable
from repro.parallel import (
    FAULT_PLAN_ENV,
    CellFailedError,
    CellTimeoutError,
    FaultPlan,
    InjectedCrash,
    RetryPolicy,
    SweepCell,
    SweepStats,
    default_workers,
    run_cells,
)
from repro.parallel.faults import CORRUPT_RESULT, is_corrupt


# ----------------------------------------------------------------------
# module-level cell functions (pool workers pickle them by reference)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _sleep_forever(x):
    import time

    time.sleep(1.5)
    return x


def _sleep_then_square(x):
    import time

    time.sleep(0.25)
    return x * x


def _hang(x):
    import time

    time.sleep(60)
    return x


def _die_in_worker(x):
    """Kill the hosting process — but only when it *is* a pool worker.

    The serial-fallback path runs this in the parent, which must survive,
    so the exit is gated on being a child process.
    """
    if multiprocessing.parent_process() is not None:
        os._exit(3)
    return x * x


def _cells(n=8):
    return [SweepCell(key=i, fn=_square, args=(i,)) for i in range(n)]


EXPECTED = {i: i * i for i in range(8)}


# ----------------------------------------------------------------------
# property: any covered fault plan yields fault-free results
# ----------------------------------------------------------------------
plan_strategy = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31),
    rate=st.floats(min_value=0.0, max_value=1.0),
    kinds=st.sets(
        st.sampled_from(["crash", "timeout", "corrupt"]), min_size=1
    ).map(tuple),
    max_per_cell=st.integers(min_value=0, max_value=3),
)


@given(plan=plan_strategy)
@settings(max_examples=30, deadline=None)
def test_recovered_faults_never_change_results(plan):
    stats = SweepStats()
    result = run_cells(
        _cells(),
        workers=1,
        fault_plan=plan,
        policy=RetryPolicy.covering(plan),
        stats=stats,
    )
    assert result == EXPECTED
    assert stats.completed == 8
    assert stats.failed == []
    # Every injected fault was paid for with a retry.
    assert stats.retries == stats.injected_faults


@given(plan=plan_strategy.map(lambda p: FaultPlan(p.seed, round(p.rate, 4), p.kinds, p.max_per_cell)))
@settings(max_examples=10, deadline=None)
def test_plan_string_round_trip(plan):
    # ``to_string`` prints the rate with %g, so only test rates that
    # survive that formatting (the plan strings humans actually write).
    assert FaultPlan.from_string(plan.to_string()) == plan


def test_plan_decisions_are_deterministic():
    plan = FaultPlan(seed=7, rate=0.5, kinds=("crash", "timeout", "corrupt"))
    decisions = [plan.decide(f"cell{i}", a) for i in range(50) for a in range(3)]
    again = [plan.decide(f"cell{i}", a) for i in range(50) for a in range(3)]
    assert decisions == again
    assert any(d is not None for d in decisions)
    # At/beyond the per-cell budget every attempt is clean.
    assert all(plan.decide(f"cell{i}", plan.max_per_cell) is None for i in range(50))


# ----------------------------------------------------------------------
# pool mode: same determinism across processes
# ----------------------------------------------------------------------
def test_pool_mode_recovers_faults_identically():
    plan = FaultPlan(seed=3, rate=0.5, kinds=("crash", "corrupt"), max_per_cell=2)
    stats = SweepStats()
    result = run_cells(
        _cells(),
        # Capped to the runner's usable CPUs (min 2 keeps pool mode live
        # on single-core CI) so low-core runners aren't oversubscribed.
        workers=max(2, min(3, default_workers())),
        fault_plan=plan,
        policy=RetryPolicy.covering(plan),
        stats=stats,
    )
    assert result == EXPECTED
    assert stats.injected_faults > 0
    assert stats.failed == []


def test_duplicate_keys_resolve_in_submission_order():
    # Two cells share a key; the later submission must win in both modes,
    # exactly as a serial dict-update loop would have it.
    cells = [
        SweepCell(key="dup", fn=_square, args=(2,)),
        SweepCell(key="dup", fn=_square, args=(5,)),
    ]
    assert run_cells(cells, workers=1) == {"dup": 25}
    assert run_cells(cells, workers=2) == {"dup": 25}


def test_corrupt_results_never_leak():
    plan = FaultPlan(seed=11, rate=1.0, kinds=("corrupt",), max_per_cell=1)
    result = run_cells(
        _cells(), workers=1, fault_plan=plan, policy=RetryPolicy.covering(plan)
    )
    assert result == EXPECTED
    assert not any(is_corrupt(v) for v in result.values())
    assert is_corrupt(CORRUPT_RESULT)  # the detector itself


# ----------------------------------------------------------------------
# exhaustion: attribution, graceful completion of the rest
# ----------------------------------------------------------------------
def test_exhausted_retries_raise_named_cell_after_others_finish():
    plan = FaultPlan(seed=1, rate=1.0, kinds=("crash",), max_per_cell=10)
    stats = SweepStats()
    cells = _cells(4)
    with pytest.raises(CellFailedError) as excinfo:
        run_cells(
            cells,
            workers=1,
            fault_plan=plan,
            policy=RetryPolicy(max_retries=1),
            stats=stats,
        )
    err = excinfo.value
    assert err.key in range(4)
    assert err.attempts == 2
    assert isinstance(err.__cause__, InjectedCrash)
    # Every cell failed; the first is raised, the rest are listed.
    assert len(err.also_failed) == 3
    assert len(stats.failed) == 4
    assert stats.completed == 0


def test_partial_failure_still_completes_other_cells():
    # rate=1 faults every attempt of every cell but the policy's single
    # retry beats a max_per_cell=1 budget — except we give zero retries,
    # so every cell fails... instead: fault only attempt 0, no retries.
    plan = FaultPlan(seed=5, rate=0.5, kinds=("crash",), max_per_cell=1)
    stats = SweepStats()
    with pytest.raises(CellFailedError):
        run_cells(
            _cells(),
            workers=1,
            fault_plan=plan,
            policy=RetryPolicy(max_retries=0),
            stats=stats,
        )
    # The unlucky cells failed, the clean ones completed anyway.
    assert 0 < stats.completed < 8
    assert stats.completed + len(stats.failed) == 8


# ----------------------------------------------------------------------
# environment-variable plan (the CI chaos hook)
# ----------------------------------------------------------------------
def test_env_fault_plan_is_honoured_and_covered(monkeypatch):
    plan = FaultPlan(seed=9, rate=0.6, kinds=("crash", "corrupt"), max_per_cell=2)
    monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_string())
    stats = SweepStats()
    # No explicit policy: the engine must choose one covering the plan.
    result = run_cells(_cells(), workers=1, stats=stats)
    assert result == EXPECTED
    assert stats.injected_faults > 0
    assert stats.failed == []


def test_env_plan_ignored_when_unset(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    stats = SweepStats()
    assert run_cells(_cells(), workers=1, stats=stats) == EXPECTED
    assert stats.injected_faults == 0 and stats.retries == 0


# ----------------------------------------------------------------------
# pool degradation and deadlines
# ----------------------------------------------------------------------
def test_worker_death_degrades_to_serial_and_completes():
    stats = SweepStats()
    cells = [SweepCell(key=i, fn=_die_in_worker, args=(i,)) for i in range(4)]
    result = run_cells(cells, workers=2, stats=stats)
    assert result == {i: i * i for i in range(4)}
    assert stats.pool_restarts >= 1
    assert stats.serial_fallback is True
    assert stats.failed == []


def test_cell_timeout_exhaustion_raises_and_does_not_hang(monkeypatch):
    # This test is about *real* wall-clock deadlines; a chaos-plan crash
    # injected before the sleep would mask the CellTimeoutError cause.
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    stats = SweepStats()
    # Two cells: a single-cell sweep would collapse to serial mode, where
    # wall-clock deadlines are unenforceable.
    cells = [SweepCell(key=k, fn=_sleep_forever, args=(1,)) for k in ("s0", "s1")]
    with pytest.raises(CellFailedError) as excinfo:
        run_cells(
            cells,
            workers=2,
            policy=RetryPolicy(max_retries=0, cell_timeout=0.2),
            stats=stats,
        )
    assert isinstance(excinfo.value.__cause__, CellTimeoutError)
    assert stats.timeouts == 2


def test_queued_cells_are_not_charged_timeout_while_waiting(monkeypatch):
    # 8 cells of ~0.25s over 2 workers: the last cells spend ~0.75s queued,
    # which must not count against their 0.6s *execution* deadline.  (The
    # deadline starts at submission, and submissions are throttled to the
    # worker count, so a submitted cell is executing, not queued.)
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    stats = SweepStats()
    cells = [SweepCell(key=i, fn=_sleep_then_square, args=(i,)) for i in range(8)]
    result = run_cells(
        cells,
        workers=2,
        policy=RetryPolicy(max_retries=0, cell_timeout=0.6),
        stats=stats,
    )
    assert result == {i: i * i for i in range(8)}
    assert stats.timeouts == 0
    assert stats.failed == []


def test_hung_cell_does_not_wedge_engine_or_shutdown(monkeypatch):
    # A worker stuck on a 60s cell cannot be preempted; the engine must
    # replace the pool (terminating the stuck worker) rather than join it
    # at shutdown, and the healthy cells sharing the pool must complete.
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    stats = SweepStats()
    cells = [SweepCell(key="hang", fn=_hang, args=(0,))] + [
        SweepCell(key=i, fn=_square, args=(i,)) for i in range(3)
    ]
    start = time.monotonic()
    with pytest.raises(CellFailedError) as excinfo:
        run_cells(
            cells,
            workers=2,
            policy=RetryPolicy(max_retries=0, cell_timeout=0.3),
            stats=stats,
        )
    assert time.monotonic() - start < 10.0  # terminated, never joined
    assert excinfo.value.key == "hang"
    assert isinstance(excinfo.value.__cause__, CellTimeoutError)
    assert stats.completed == 3
    assert stats.pool_restarts >= 1


# ----------------------------------------------------------------------
# policy arithmetic and observability
# ----------------------------------------------------------------------
def test_backoff_is_pure_and_jitterless():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
    assert policy.delay(0) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.4)
    assert [policy.delay(a) for a in range(4)] == [
        policy.delay(a) for a in range(4)
    ]
    assert RetryPolicy().delay(5) == 0.0  # default base disables sleeping


def test_covering_policy_outlasts_plan_budget():
    plan = FaultPlan(seed=0, rate=1.0, kinds=("crash",), max_per_cell=3)
    assert RetryPolicy.covering(plan).max_retries >= plan.max_per_cell
    assert RetryPolicy.covering(None).max_retries == RetryPolicy().max_retries


def test_retries_and_resumes_appear_in_spans():
    plan = FaultPlan(seed=2, rate=1.0, kinds=("crash",), max_per_cell=1)
    recorder = enable()
    try:
        run_cells(
            [SweepCell(key="a", fn=_square, args=(3,))],
            workers=1,
            label="unit",
            fault_plan=plan,
            policy=RetryPolicy.covering(plan),
        )
    finally:
        disable()
    paths = recorder.paths()
    assert "sweep[unit]/retry[a]" in paths
    assert "sweep[unit]/cell[a]" in paths
