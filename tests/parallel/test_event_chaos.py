"""Event-stream integrity under chaos (ISSUE 7 satellite).

The resilience suite proves fault injection never changes *results*;
this file proves it never corrupts the *flight recording* either.  For
any seeded :class:`FaultPlan`, the fault schedule is a pure function of
``(fingerprint, attempt)`` — so a test can recompute, independently of
the engine, exactly which injected faults and retries must appear in the
event stream, and assert each appears exactly once with causal per-cell
ordering.  Fixed-seed pool cases extend the claim across process
boundaries, including the hardest path: a wedged-pool replacement must
not lose any event the doomed workers already enqueued.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.events import collecting
from repro.parallel import (
    CellFailedError,
    FaultPlan,
    RetryPolicy,
    SweepCell,
    SweepStats,
    default_workers,
    run_cells,
)
from repro.utils.fingerprint import cell_fingerprint


def _pool_workers(wanted: int) -> int:
    """Cap a test's pool size to the runner's usable CPUs (min 2 so the
    process-pool path stays exercised even on single-core CI)."""
    return max(2, min(wanted, default_workers()))


# ----------------------------------------------------------------------
# module-level cell functions (pool workers pickle them by reference)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _hang(x):
    time.sleep(60)
    return x


def _cells(n=6):
    return [SweepCell(key=i, fn=_square, args=(i,)) for i in range(n)]


def _fingerprints(cells):
    return {
        cell.key: cell_fingerprint(cell.fn, cell.key, cell.args, cell.kwargs)
        for cell in cells
    }


def _predicted_faults(plan, fingerprints):
    """Recompute the engine's fault schedule from the plan alone.

    Returns ``{fingerprint: [kind, ...]}`` — the injected fault of each
    failed attempt, in attempt order, ending at the first clean attempt
    (which succeeds, because the cells themselves never fail).
    """
    schedule = {}
    for fingerprint in fingerprints.values():
        kinds = []
        attempt = 0
        while True:
            kind = plan.decide(fingerprint, attempt)
            if kind is None:
                break
            kinds.append(kind)
            attempt += 1
        schedule[fingerprint] = kinds
    return schedule


def _fault_event_kind(injected_kind):
    # InjectedTimeout surfaces as cell_timeout; crash and corrupt as
    # cell_faulted (the corrupt poison is detected by the parent).
    return "cell_timeout" if injected_kind == "timeout" else "cell_faulted"


plan_strategy = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31),
    rate=st.floats(min_value=0.0, max_value=1.0),
    kinds=st.sets(
        st.sampled_from(["crash", "timeout", "corrupt"]), min_size=1
    ).map(tuple),
    max_per_cell=st.integers(min_value=0, max_value=3),
)


# ----------------------------------------------------------------------
# the property: the recording matches the independently recomputed schedule
# ----------------------------------------------------------------------
@given(plan=plan_strategy)
@settings(max_examples=25, deadline=None)
def test_every_injected_fault_is_recorded_exactly_once(plan):
    cells = _cells()
    fingerprints = _fingerprints(cells)
    schedule = _predicted_faults(plan, fingerprints)
    with collecting() as bus:
        result = run_cells(
            cells,
            workers=1,
            fault_plan=plan,
            policy=RetryPolicy.covering(plan),
        )
    assert result == {i: i * i for i in range(6)}

    events = bus.events()
    predicted = sorted(
        (fingerprint, attempt, _fault_event_kind(kind))
        for fingerprint, kinds in schedule.items()
        for attempt, kind in enumerate(kinds)
    )
    observed = sorted(
        (e.fingerprint, e.attempt, e.kind)
        for e in events
        if e.kind in ("cell_faulted", "cell_timeout")
    )
    # Exactly once: same multiset, so nothing lost and nothing duplicated.
    assert observed == predicted
    assert all(
        e.payload["injected"] and not e.payload["permanent"]
        for e in events
        if e.kind in ("cell_faulted", "cell_timeout")
    )
    retried = sorted(
        (e.fingerprint, e.attempt)
        for e in events
        if e.kind == "cell_retried"
    )
    assert retried == sorted(
        (fingerprint, attempt) for fingerprint, attempt, _ in predicted
    )

    fleet = bus.fleet_summary()["cells"]
    assert fleet["executed"] == len(cells)
    assert fleet["total"] == fleet["executed"]  # nothing cached or resumed
    assert fleet["failed"] == 0
    assert fleet["injected_faults"] == fleet["faults"] == len(predicted)
    assert fleet["retries"] == len(predicted)


@given(plan=plan_strategy)
@settings(max_examples=25, deadline=None)
def test_per_cell_event_order_is_causal(plan):
    cells = _cells()
    fingerprints = _fingerprints(cells)
    schedule = _predicted_faults(plan, fingerprints)
    with collecting() as bus:
        run_cells(
            cells,
            workers=1,
            fault_plan=plan,
            policy=RetryPolicy.covering(plan),
        )
    events = bus.events()
    for key, fingerprint in fingerprints.items():
        kinds = schedule[fingerprint]
        history = [
            (e.kind, e.attempt)
            for e in events
            if e.fingerprint == fingerprint
        ]
        # started(a) -> fault(a) -> retried(a) for each failed attempt,
        # then started(k) -> finished(k): the exact causal lifecycle.
        expected = []
        for attempt, kind in enumerate(kinds):
            expected += [
                ("cell_started", attempt),
                (_fault_event_kind(kind), attempt),
                ("cell_retried", attempt),
            ]
        final = len(kinds)
        expected += [("cell_started", final), ("cell_finished", final)]
        assert history == expected, f"cell {key!r}"


# ----------------------------------------------------------------------
# pool mode: the same integrity across process boundaries
# ----------------------------------------------------------------------
def test_pool_mode_records_the_same_schedule_as_serial():
    plan = FaultPlan(seed=7, rate=0.5, kinds=("crash", "corrupt"), max_per_cell=2)
    cells = _cells(8)
    schedule = _predicted_faults(plan, _fingerprints(cells))
    predicted = sorted(
        (fingerprint, attempt, _fault_event_kind(kind))
        for fingerprint, kinds in schedule.items()
        for attempt, kind in enumerate(kinds)
    )
    assert predicted  # seed chosen so the test actually exercises faults
    with collecting() as bus:
        result = run_cells(
            cells,
            workers=_pool_workers(4),
            fault_plan=plan,
            policy=RetryPolicy.covering(plan),
        )
        bus.close()
    assert result == {i: i * i for i in range(8)}
    events = bus.events()
    observed = sorted(
        (e.fingerprint, e.attempt, e.kind)
        for e in events
        if e.kind in ("cell_faulted", "cell_timeout")
    )
    assert observed == predicted
    # Worker-side lifecycle crossed the process boundary intact: one
    # start per attempt (failed and final), one finish per cell.
    starts = [e for e in events if e.kind == "cell_started"]
    assert len(starts) == len(cells) + len(predicted)
    assert sum(1 for e in events if e.kind == "cell_finished") == len(cells)
    assert sum(1 for e in events if e.kind == "worker_spawned") >= 1
    assert all(e.worker.startswith("pid") for e in starts)
    fleet = bus.fleet_summary()
    assert fleet["cells"]["executed"] == 8
    assert fleet["cells"]["total"] == 8
    assert fleet["workers"]["spawned"] >= 1


def test_pool_causal_order_verdict_follows_start(monkeypatch):
    # Weaker than the serial ordering claim (workers interleave), but the
    # per-cell causality must survive the queue: a parent verdict on
    # attempt N arrives after that attempt's cell_started, and the next
    # attempt's start arrives after the verdict.
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    plan = FaultPlan(seed=3, rate=0.6, kinds=("crash",), max_per_cell=2)
    cells = _cells(6)
    with collecting() as bus:
        run_cells(
            cells,
            workers=_pool_workers(3),
            fault_plan=plan,
            policy=RetryPolicy.covering(plan),
        )
        bus.close()
    for fingerprint in _fingerprints(cells).values():
        history = [
            (e.kind, e.attempt)
            for e in bus.events()
            if e.fingerprint == fingerprint
            and e.kind in ("cell_started", "cell_faulted", "cell_retried",
                           "cell_finished")
        ]
        position = {pair: i for i, pair in enumerate(history)}
        assert len(position) == len(history)  # no duplicated lifecycle event
        for kind, attempt in history:
            if kind in ("cell_faulted", "cell_retried", "cell_finished"):
                assert position[("cell_started", attempt)] < position[(kind, attempt)]
            if kind == "cell_started" and attempt > 0:
                assert position[("cell_retried", attempt - 1)] < position[(kind, attempt)]


# ----------------------------------------------------------------------
# wedged-pool replacement: nothing already enqueued is lost
# ----------------------------------------------------------------------
def test_wedged_pool_replacement_loses_no_events(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    stats = SweepStats()
    cells = [SweepCell(key="hang", fn=_hang, args=(0,))] + [
        SweepCell(key=i, fn=_square, args=(i,)) for i in range(3)
    ]
    fingerprints = _fingerprints(cells)
    with collecting() as bus:
        with pytest.raises(CellFailedError):
            run_cells(
                cells,
                workers=2,
                policy=RetryPolicy(max_retries=0, cell_timeout=0.3),
                stats=stats,
            )
        bus.close()
    assert stats.pool_restarts >= 1
    events = bus.events()

    replacements = [e for e in events if e.kind == "worker_replaced"]
    assert replacements and replacements[0].payload["reason"] == "wedged"

    # The hung cell's start was enqueued by a worker that was later
    # terminated — the replacement pump must still have collected it.
    hang_fp = fingerprints["hang"]
    assert any(
        e.kind == "cell_started" and e.fingerprint == hang_fp for e in events
    )
    timeout = next(e for e in events if e.kind == "cell_timeout")
    assert timeout.fingerprint == hang_fp
    assert timeout.payload["permanent"]
    assert not timeout.payload["injected"]  # a real deadline, not a drill

    # Every healthy cell finished exactly once despite the replacement.
    finished = [e.fingerprint for e in events if e.kind == "cell_finished"]
    assert sorted(finished) == sorted(
        fingerprints[key] for key in fingerprints if key != "hang"
    )
    fleet = bus.fleet_summary()["cells"]
    assert fleet["executed"] == 3
    assert fleet["total"] == 3
    assert fleet["failed"] == 1
    assert fleet["timeouts"] >= 1
