"""Graph-affinity scheduling: grouping, co-location, and greedy bounds.

The affinity layer (:func:`repro.parallel.scheduling.cell_affinity` +
:func:`repro.parallel.scheduling.affinity_lanes`) must be a pure
re-labelling of the sweep: every cell assigned exactly once, cells
sharing a graph always on the same lane, lane loads within the greedy
list-scheduling bound on *grouped* costs — and the resilient engine's
lane dispatch must leave results bit-identical to the FIFO order.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.builder import build_csr
from repro.graphs.generators import uniform_random_graph
from repro.parallel.scheduling import affinity_lanes, cell_affinity
from repro.parallel.shm import GraphStore, resolve_graph
from repro.parallel.sweep import SweepCell, run_cells


# ----------------------------------------------------------------------
# property tests on (key, cost) hints
# ----------------------------------------------------------------------
hints_strategy = st.lists(
    st.tuples(st.sampled_from("abcdefg"), st.floats(0.0, 100.0)),
    min_size=1,
    max_size=50,
)


@given(hints=hints_strategy, workers=st.integers(1, 6))
@settings(max_examples=80, deadline=None)
def test_property_every_cell_assigned_exactly_once(hints, workers):
    lanes = affinity_lanes(hints, workers)
    assert len(lanes) == workers
    assigned = sorted(index for lane in lanes for index in lane)
    assert assigned == list(range(len(hints)))


@given(hints=hints_strategy, workers=st.integers(1, 6))
@settings(max_examples=80, deadline=None)
def test_property_shared_key_cells_colocate(hints, workers):
    """Cells with the same affinity key always land on one lane —
    regardless of worker count (a group never splits; the balancer
    moves whole groups)."""
    lanes = affinity_lanes(hints, workers)
    lane_of = {
        index: lane_index
        for lane_index, lane in enumerate(lanes)
        for index in lane
    }
    by_key: dict[str, set[int]] = {}
    for index, (key, _) in enumerate(hints):
        by_key.setdefault(key, set()).add(lane_of[index])
    assert all(len(lanes_used) == 1 for lanes_used in by_key.values())


@given(hints=hints_strategy, workers=st.integers(1, 6))
@settings(max_examples=80, deadline=None)
def test_property_greedy_bound_holds_on_grouped_costs(hints, workers):
    """Graham's list-scheduling bound, at group granularity: lane loads
    never exceed mean group load + the largest single group."""
    lanes = affinity_lanes(hints, workers)
    costs = [cost for _, cost in hints]
    group_totals: dict[str, float] = {}
    for key, cost in hints:
        group_totals[key] = group_totals.get(key, 0.0) + cost
    lane_loads = [sum(costs[index] for index in lane) for lane in lanes]
    mean_load = sum(costs) / workers
    max_group = max(group_totals.values())
    assert max(lane_loads) <= mean_load + max_group + 1e-9


def test_lanes_preserve_submission_order_within_lane():
    hints = [("a", 1.0), ("b", 1.0), ("a", 1.0), ("b", 1.0), ("a", 1.0)]
    lanes = affinity_lanes(hints, 2)
    for lane in lanes:
        assert lane == sorted(lane)


def test_affinity_lanes_rejects_bad_workers():
    with pytest.raises(ValueError):
        affinity_lanes([("a", 1.0)], 0)


# ----------------------------------------------------------------------
# cell hint extraction
# ----------------------------------------------------------------------
def _identity_cell(*args, **kwargs):
    return args, kwargs


def test_cell_affinity_groups_by_graph_identity_and_fingerprint():
    g1 = build_csr(uniform_random_graph(300, 4, seed=1))
    g2 = build_csr(uniform_random_graph(300, 4, seed=2))
    cells = [
        SweepCell(key=("g1", w), fn=_identity_cell, args=(g1, w)) for w in (8, 16)
    ] + [
        SweepCell(key=("g2", w), fn=_identity_cell, args=(g2, w)) for w in (8, 16)
    ]
    hints = cell_affinity(cells)
    keys = [key for key, _ in hints]
    assert keys[0] == keys[1]
    assert keys[2] == keys[3]
    assert keys[0] != keys[2]
    assert all(cost == float(g1.num_edges) for _, cost in hints[:2])

    with GraphStore() as store:
        refs = [store.publish_cell(cell) for cell in cells]
        ref_hints = cell_affinity(refs)
    ref_keys = [key for key, _ in ref_hints]
    assert ref_keys[0] == ref_keys[1] != ref_keys[2]
    # shm refs group by content fingerprint, not object identity
    assert ref_keys[0][0] == "shm"


def test_cell_affinity_graphless_cells_are_singletons():
    cells = [
        SweepCell(key=i, fn=_identity_cell, args=(i,), kwargs={"x": 2 * i})
        for i in range(4)
    ]
    hints = cell_affinity(cells)
    assert len({key for key, _ in hints}) == len(cells)
    assert all(cost == 1.0 for _, cost in hints)


# ----------------------------------------------------------------------
# end to end: lane dispatch is invisible in the results
# ----------------------------------------------------------------------
def _degree_cell(graph, scale):
    graph = resolve_graph(graph)
    return float(np.sum(np.diff(graph.offsets))) * scale


def test_run_cells_affinity_matches_serial_results():
    graphs = [build_csr(uniform_random_graph(200, 4, seed=s)) for s in (1, 2, 3)]
    cells = [
        SweepCell(key=(s, scale), fn=_degree_cell, args=(graphs[s], scale))
        for s in range(3)
        for scale in (1.0, 2.0, 3.0)
    ]
    serial = run_cells(cells, workers=1)
    pooled = run_cells(cells, workers=2, affinity=True)
    assert pooled == serial
