"""Tests for the content-addressed measurement cache."""

import json
import os

import numpy as np

from repro.harness.cache import CACHE_SCHEMA_VERSION, MeasurementCache


def _entry_path(cache: MeasurementCache, fingerprint: str) -> str:
    return os.path.join(
        cache.directory, "objects", fingerprint[:2], f"{fingerprint}.json"
    )


FP = "ab" + "0" * 62


def test_round_trip_json_payload(tmp_path):
    cache = MeasurementCache(str(tmp_path))
    assert cache.get(FP) is None
    cache.put(FP, {"requests": 12, "time": 0.5}, seconds=1.25)
    entry = cache.get(FP)
    assert entry.result == {"requests": 12, "time": 0.5}
    assert entry.seconds == 1.25
    assert entry.fingerprint == FP


def test_round_trip_pickle_payload(tmp_path):
    # Results that do not survive a JSON round trip (numpy scalars, tuples)
    # take the pickle encoding transparently.
    cache = MeasurementCache(str(tmp_path))
    value = {"array": np.arange(4), "pair": (1, 2)}
    cache.put(FP, value, seconds=0.0)
    restored = cache.get(FP).result
    assert isinstance(restored["pair"], tuple)
    np.testing.assert_array_equal(restored["array"], np.arange(4))


def test_len_counts_entries(tmp_path):
    cache = MeasurementCache(str(tmp_path))
    assert len(cache) == 0
    cache.put(FP, 1, seconds=0.0)
    cache.put("cd" + "0" * 62, 2, seconds=0.0)
    assert len(cache) == 2
    assert cache.has(FP)
    assert not cache.has("ef" + "0" * 62)


def test_corrupt_entry_is_a_miss_and_recovers(tmp_path):
    cache = MeasurementCache(str(tmp_path))
    cache.put(FP, 41, seconds=0.0)
    with open(_entry_path(cache, FP), "w") as handle:
        handle.write('{"kind": "measurement_cache_entry", "schema')  # truncated
    assert cache.get(FP) is None
    # Overwriting repairs the entry.
    cache.put(FP, 42, seconds=0.0)
    assert cache.get(FP).result == 42


def test_wrong_major_version_is_a_miss(tmp_path):
    cache = MeasurementCache(str(tmp_path))
    cache.put(FP, 7, seconds=0.0)
    path = _entry_path(cache, FP)
    data = json.loads(open(path).read())
    data["schema_version"] = "999.0"
    with open(path, "w") as handle:
        json.dump(data, handle)
    assert cache.get(FP) is None


def test_minor_version_drift_still_loads(tmp_path):
    cache = MeasurementCache(str(tmp_path))
    cache.put(FP, 7, seconds=0.0)
    path = _entry_path(cache, FP)
    data = json.loads(open(path).read())
    major = CACHE_SCHEMA_VERSION.split(".", 1)[0]
    data["schema_version"] = f"{major}.999"
    with open(path, "w") as handle:
        json.dump(data, handle)
    assert cache.get(FP).result == 7


def test_fingerprint_mismatch_is_a_miss(tmp_path):
    # A file moved or renamed to the wrong address must not be trusted.
    cache = MeasurementCache(str(tmp_path))
    cache.put(FP, 7, seconds=0.0)
    other = "ac" + "0" * 62
    os.makedirs(os.path.dirname(_entry_path(cache, other)), exist_ok=True)
    os.replace(_entry_path(cache, FP), _entry_path(cache, other))
    assert cache.get(other) is None


def test_foreign_json_is_a_miss(tmp_path):
    cache = MeasurementCache(str(tmp_path))
    path = _entry_path(cache, FP)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump({"kind": "something_else"}, handle)
    assert cache.get(FP) is None
