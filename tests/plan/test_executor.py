"""Tests for the plan executor: single execution, cache, fan-out, stats."""

import pytest

from repro.harness.cache import MeasurementCache
from repro.parallel.resilience import CellFailedError, RetryPolicy, SweepOptions
from repro.plan import Cell, ExperimentSpec, compile_plan, execute_plan

CALLS: list = []


def _traced_square(x):
    CALLS.append(x)
    return x * x


def _fail_on(x):
    if x == "boom":
        raise RuntimeError("injected")
    return x


@pytest.fixture(autouse=True)
def _reset_calls():
    CALLS.clear()


def _spec(name, cells, build=None):
    return ExperimentSpec(
        name=name, cells=cells, build=build or (lambda values: dict(values))
    )


def _shared_specs():
    a = _spec(
        "a",
        {
            "x": Cell(fn=_traced_square, args=(2,)),
            "y": Cell(fn=_traced_square, args=(3,)),
        },
    )
    b = _spec(
        "b",
        {
            "two": Cell(fn=_traced_square, args=(2,)),
            "z": Cell(fn=_traced_square, args=(5,)),
        },
    )
    return [a, b]


def test_unique_cells_execute_exactly_once():
    plan = compile_plan(_shared_specs())
    results = execute_plan(plan)
    # 4 requested, 3 unique: the shared (2,) cell ran a single time.
    assert sorted(CALLS) == [2, 3, 5]
    assert results.artifact("a") == {"x": 4, "y": 9}
    assert results.artifact("b") == {"two": 4, "z": 25}
    assert plan.stats.executed == 3
    assert plan.stats.cache_hits == 0


def test_values_for_resolves_local_keys():
    plan = compile_plan(_shared_specs())
    results = execute_plan(plan)
    assert results.values_for("b") == {"two": 4, "z": 25}


def test_build_receives_resolved_values():
    spec = _spec(
        "sum",
        {i: Cell(fn=_traced_square, args=(i,)) for i in range(4)},
        build=lambda values: sum(values.values()),
    )
    plan = compile_plan([spec])
    assert execute_plan(plan).artifact("sum") == 0 + 1 + 4 + 9


def test_cache_partition_skips_execution(tmp_path):
    cache = MeasurementCache(str(tmp_path))
    plan = compile_plan(_shared_specs())
    execute_plan(plan, cache=cache)
    assert plan.stats.executed == 3

    CALLS.clear()
    warm = compile_plan(_shared_specs())
    results = execute_plan(warm, cache=cache)
    assert CALLS == []  # nothing ran
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == 3
    assert results.artifact("a") == {"x": 4, "y": 9}


def test_cache_partial_warm_start(tmp_path):
    cache = MeasurementCache(str(tmp_path))
    plan = compile_plan([_spec("a", {"x": Cell(fn=_traced_square, args=(2,))})])
    execute_plan(plan, cache=cache)

    CALLS.clear()
    grown = compile_plan(_shared_specs())
    execute_plan(grown, cache=cache)
    # Only the two genuinely new cells ran.
    assert sorted(CALLS) == [3, 5]
    assert grown.stats.cache_hits == 1
    assert grown.stats.executed == 2


def test_checkpoint_resume_also_warms_the_cache(tmp_path):
    ck = str(tmp_path / "ck")
    cache = MeasurementCache(str(tmp_path / "cache"))
    options = SweepOptions(checkpoint_dir=ck)

    plan = compile_plan(_shared_specs())
    execute_plan(plan, options=options)
    assert plan.stats.executed == 3

    # Resume everything from the checkpoint; the resumed results must be
    # mirrored into the cache even though nothing executed.
    CALLS.clear()
    resumed = compile_plan(_shared_specs())
    execute_plan(resumed, options=SweepOptions(checkpoint_dir=ck), cache=cache)
    assert CALLS == []
    assert resumed.stats.executed == 0
    assert resumed.stats.resumed == 3

    warm = compile_plan(_shared_specs())
    execute_plan(warm, cache=cache)
    assert warm.stats.cache_hits == 3


def test_failure_propagates_and_counts_completed_work():
    spec = _spec(
        "mixed",
        {
            "ok": Cell(fn=_fail_on, args=("fine",)),
            "bad": Cell(fn=_fail_on, args=("boom",)),
        },
    )
    plan = compile_plan([spec])
    with pytest.raises(CellFailedError):
        execute_plan(plan, options=SweepOptions(policy=RetryPolicy(max_retries=0)))
    # The healthy cell's completion is still visible in the plan stats.
    assert plan.stats.executed == 1


def test_empty_plan_executes_nothing():
    plan = compile_plan([_spec("empty", {})])
    results = execute_plan(plan)
    assert results.artifact("empty") == {}
    assert plan.stats.executed == 0
