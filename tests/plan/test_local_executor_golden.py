"""Behavior-preservation pin for the executor-protocol refactor.

``tests/plan/data/golden_local_executor.json`` was captured from the
tree *before* ``execute_plan`` delegated to :class:`~repro.plan.
executors.LocalExecutor`.  This test replays the same scale-0.25
reproduce and asserts every plan cell fingerprint, every artifact byte,
and every checkpoint line (timings excluded) is still identical — the
seam must be invisible.  Regenerate the golden only for a deliberate
fingerprint- or artifact-affecting change, never to quiet this test.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness.reproduce import ARTIFACTS, plan_specs
from repro.plan import compile_plan

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_local_executor.json"
SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


def test_plan_cell_fingerprints_unchanged(golden):
    specs = plan_specs(set(ARTIFACTS), scale=golden["scale"], seed=golden["seed"])
    plan = compile_plan(specs)
    fingerprints = {plan.labels[fp]: fp for fp in plan.cells}
    assert fingerprints == golden["cell_fingerprints"]


def test_reproduce_artifacts_and_checkpoint_unchanged(golden, tmp_path):
    out = tmp_path / "out"
    checkpoints = tmp_path / "ck"
    out.mkdir()
    checkpoints.mkdir()
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro.harness.reproduce",
            "--scale", str(golden["scale"]), "--seed", str(golden["seed"]),
            "--output", str(out), "--resume", str(checkpoints), "-q", "-q",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]

    artifacts = {
        name: hashlib.sha256((out / name).read_bytes()).hexdigest()
        for name in sorted(os.listdir(out))
    }
    assert artifacts == golden["artifact_sha256"]

    lines = []
    with open(checkpoints / "sweep_plan.jsonl") as handle:
        for line in handle:
            record = json.loads(line)
            record.pop("seconds", None)  # timings vary run to run
            lines.append(json.dumps(record, sort_keys=True))
    assert len(lines) == golden["checkpoint_cells"]
    digest = hashlib.sha256("\n".join(sorted(lines)).encode()).hexdigest()
    assert digest == golden["checkpoint_sha256"]
