"""Dedup guarantees of the real paper artifacts, on tiny inputs.

Regression context: before the plan layer, figures 9 and 10 called
``_sweep_cache or _bin_width_sweep(...)`` — an empty-dict sweep cache is
falsy, so a legitimately empty cache re-ran the whole sweep, and nothing
pinned that the two figures actually shared one execution.  These tests
pin the sharing structurally: one plan, each unique cell executed exactly
once, measured by the executor's own counters.
"""

import pytest

from repro.graphs import load_graph, load_suite
from repro.harness.figures import (
    figure3_spec,
    figure4_spec,
    figure9_spec,
    figure10_spec,
)
from repro.harness.reproduce import ARTIFACTS, plan_specs
from repro.harness.tables import table2_spec, table3_spec
from repro.plan import compile_plan, execute_plan
from tests.kernels.conftest import TINY_MACHINE


@pytest.fixture(scope="module")
def tiny_pair():
    return load_suite(scale=0.02, seed=42, names=("urand", "web"))


def test_fig9_fig10_share_one_sweep(tmp_path):
    urand = load_graph("urand", scale=0.04, seed=42)
    widths = [32, 256, 2048]
    plan = compile_plan(
        [
            figure9_spec({"urand": urand}, widths, TINY_MACHINE),
            figure10_spec({"urand": urand}, widths, TINY_MACHINE),
        ]
    )
    results = execute_plan(plan)
    # Both figures requested the full sweep; it executed once.
    assert plan.cells_requested == 2 * len(widths)
    assert plan.cells_unique == len(widths)
    assert plan.stats.executed == len(widths)
    # And both artifacts built from it.
    assert results.artifact("fig9").series["urand"]
    assert results.artifact("fig10").series["urand"]


def test_suite_family_executes_each_cell_once(tiny_pair):
    specs = [
        table2_spec(tiny_pair["urand"], TINY_MACHINE),
        table3_spec(tiny_pair, TINY_MACHINE),
        figure3_spec(tiny_pair, TINY_MACHINE),
        figure4_spec(tiny_pair, TINY_MACHINE),
    ]
    plan = compile_plan(specs)
    # 2 graphs x {baseline,pb,dpb} + 4 prior-work + urand baseline shared
    # with table2 + fig3's baselines shared + fig4's 8 cells partly new.
    assert plan.cells_requested == 5 + 6 + 2 + 8
    assert plan.cells_unique == 4 + 2 * 4  # prior work + (graph x method)
    results = execute_plan(plan)
    assert plan.stats.executed == plan.cells_unique
    # Shared cells resolved to identical objects across artifacts.
    t2 = results.values_for("table2")
    t3 = results.values_for("table3")
    assert t2["baseline"] is t3[("urand", "baseline")]


def test_full_reproduce_plan_dedups():
    # Compilation performs no simulation, so the *entire* reproduction
    # DAG can be checked cheaply: the suite family and the bin-width
    # sweeps overlap heavily, and that must survive any spec refactor.
    specs = plan_specs(set(ARTIFACTS), scale=0.02, seed=42)
    plan = compile_plan(specs)
    assert {spec.name for spec in specs} == set(ARTIFACTS)
    assert plan.dedup_ratio > 1.0
    rows = {row[0]: row[1:] for row in plan.summary_rows()}
    # fig3/fig5/fig6 and fig10 own nothing: everything they need is
    # already requested by an earlier artifact.
    for name in ("fig3", "fig5", "fig6", "fig10"):
        assert rows[name][1] == 0, name
        assert rows[name][2] == rows[name][0], name
    # table3 shares exactly its urand baseline cell with table2.
    assert rows["table3"][2] == 1
