"""Tests for the plan model and compiler: cells, fingerprints, dedup."""

import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.plan import Cell, ExperimentSpec, compile_plan
from repro.utils.validation import pow2_at_least

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_plan_fingerprints.json"


def _double(x):
    return 2 * x


def _triple(x):
    return 3 * x


def _spec(name, cells):
    return ExperimentSpec(name=name, cells=cells, build=lambda values: dict(values))


def _fingerprint_for(n: int) -> str:
    return Cell(fn=pow2_at_least, args=(n,)).fingerprint()


# ----------------------------------------------------------------------
# Cell fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_is_content_only():
    # Two artifacts requesting the same work under different local keys
    # must produce the same fingerprint — that is what dedup keys on.
    assert (
        Cell(fn=_double, args=(3,)).fingerprint()
        == Cell(fn=_double, args=(3,)).fingerprint()
    )


def test_fingerprint_separates_fn_args_kwargs():
    base = Cell(fn=_double, args=(3,)).fingerprint()
    assert Cell(fn=_triple, args=(3,)).fingerprint() != base
    assert Cell(fn=_double, args=(4,)).fingerprint() != base
    assert Cell(fn=_double, args=(3,), kwargs={"k": 1}).fingerprint() != base


def test_golden_fingerprints_pinned():
    # The committed fingerprints must match today's algorithm: cache
    # directories and dedup both key on Cell.fingerprint, so any drift
    # must be a deliberate change (regenerate the golden when it is).
    golden = json.loads(GOLDEN_PATH.read_text())["fingerprints"]
    for n_text, expected in golden.items():
        assert _fingerprint_for(int(n_text)) == expected, n_text


def test_fingerprints_stable_across_processes():
    ns = [1, 3, 17, 1000]
    local = [_fingerprint_for(n) for n in ns]
    with ProcessPoolExecutor(max_workers=1) as pool:
        remote = list(pool.map(_fingerprint_for, ns))
    assert local == remote


# ----------------------------------------------------------------------
# compile_plan
# ----------------------------------------------------------------------
def test_compile_dedups_across_specs():
    a = _spec("a", {"x": Cell(fn=_double, args=(1,)), "y": Cell(fn=_double, args=(2,))})
    b = _spec("b", {"one": Cell(fn=_double, args=(1,)), "z": Cell(fn=_triple, args=(1,))})
    plan = compile_plan([a, b])
    assert plan.cells_requested == 4
    assert plan.cells_unique == 3
    assert plan.dedup_ratio == pytest.approx(4 / 3)
    # Both requests resolve to the same unique cell.
    assert plan.requests["a"]["x"] == plan.requests["b"]["one"]


def test_labels_name_first_requester():
    a = _spec("a", {"x": Cell(fn=_double, args=(1,))})
    b = _spec("b", {"one": Cell(fn=_double, args=(1,))})
    plan = compile_plan([a, b])
    fingerprint = plan.requests["a"]["x"]
    assert plan.labels[fingerprint] == "a:x"


def test_summary_rows_split_owned_and_shared():
    a = _spec("a", {"x": Cell(fn=_double, args=(1,))})
    b = _spec("b", {"one": Cell(fn=_double, args=(1,)), "z": Cell(fn=_triple, args=(1,))})
    plan = compile_plan([a, b])
    rows = {row[0]: row[1:] for row in plan.summary_rows()}
    assert rows["a"] == [1, 1, 0]
    assert rows["b"] == [2, 1, 1]
    # Owned sums to unique, requested sums to requested.
    assert sum(r[1] for r in rows.values()) == plan.cells_unique
    assert sum(r[0] for r in rows.values()) == plan.cells_requested


def test_duplicate_spec_names_rejected():
    a = _spec("a", {})
    with pytest.raises(ValueError, match="duplicate spec name"):
        compile_plan([a, _spec("a", {})])


def test_unknown_spec_name_raises():
    plan = compile_plan([_spec("a", {})])
    with pytest.raises(KeyError):
        plan.spec("missing")


def test_empty_plan_stats():
    plan = compile_plan([_spec("a", {})])
    assert plan.cells_requested == 0
    assert plan.cells_unique == 0
    assert plan.dedup_ratio == 1.0
    assert plan.stats.as_dict()["dedup_ratio"] == 1.0
