"""Cross-module integration tests: the full pipeline, small scale.

These tie the subsystems together the way a user (or the paper's
evaluation) does: generate a suite graph, profile it, take the advice,
measure all strategies, and verify the advice, models, and measurements
tell one consistent story.
"""

import numpy as np
import pytest

from repro.graphs import build_csr, load_graph, uniform_random_graph
from repro.graphs.analysis import describe
from repro.harness import run_experiment
from repro.kernels import (
    make_kernel,
    pagerank,
    pagerank_delta,
    reference_pagerank,
)
from repro.models import (
    ModelParams,
    SIMULATED_MACHINE,
    detailed_pb,
    detailed_pull,
)


@pytest.mark.parametrize(
    "case",
    [
        ("urand", 0.25),  # large, sparse, low locality
        ("web", 0.25),  # high locality layout
    ],
)
def test_advice_is_near_optimal(case):
    name, scale = case
    graph = load_graph(name, scale=scale)
    profile = describe(graph)
    measured = {
        method: run_experiment(graph, method).requests
        for method in ("baseline", "cb", "dpb")
    }
    best = min(measured.values())
    assert measured[profile.recommended_method] <= 1.10 * best


def test_model_measurement_and_execution_agree():
    """One graph, three views: the analytic model predicts the simulated
    traffic; the simulated winner matches the model's; and every strategy
    computes the same scores."""
    graph = build_csr(uniform_random_graph(32768, 8, seed=201))
    machine = SIMULATED_MACHINE
    p = ModelParams(
        n=graph.num_vertices,
        k=graph.average_degree,
        b=machine.words_per_line,
        c=machine.cache_words,
    )
    pull_model = detailed_pull(p)
    dpb_model = detailed_pb(p, reuse_destinations=True)

    pull_measured = run_experiment(graph, "baseline")
    dpb_measured = run_experiment(graph, "dpb")
    assert pull_measured.reads == pytest.approx(pull_model["reads"], rel=0.03)
    assert dpb_measured.reads == pytest.approx(dpb_model["reads"], rel=0.03)
    # Model and measurement agree on the winner.
    model_winner = "dpb" if sum(dpb_model.values()) < sum(pull_model.values()) else "pull"
    measured_winner = "dpb" if dpb_measured.requests < pull_measured.requests else "pull"
    assert model_winner == measured_winner == "dpb"

    # And the executables agree with the oracle.
    expected = reference_pagerank(graph, 2)
    for method in ("baseline", "dpb"):
        np.testing.assert_allclose(
            make_kernel(graph, method).run(2), expected, rtol=2e-4, atol=1e-9
        )


def test_delta_and_power_iteration_converge_to_same_ranking():
    graph = load_graph("twitter", scale=0.1)
    power = pagerank(graph, method="auto", tolerance=1e-9, max_iterations=300)
    delta = pagerank_delta(graph, tolerance=1e-8)
    top_power = np.argsort(power.scores)[-10:]
    top_delta = np.argsort(delta.scores)[-10:]
    assert set(top_power.tolist()) == set(top_delta.tolist())


def test_measurement_engine_consistency():
    """flru and plru engines agree closely on the headline numbers."""
    graph = build_csr(uniform_random_graph(16384, 8, seed=202))
    kernel = make_kernel(graph, "baseline")
    flru = kernel.measure(1, engine="flru")
    plru = kernel.measure(1, engine="plru")
    assert plru.total_reads == pytest.approx(flru.total_reads, rel=0.06)


def test_suite_graph_round_trips_through_io(tmp_path):
    from repro.graphs import load_npz, save_npz

    graph = load_graph("cite", scale=0.05)
    path = tmp_path / "cite.npz"
    save_npz(path, graph)
    loaded = load_npz(path)
    a = run_experiment(graph, "dpb")
    b = run_experiment(loaded, "dpb")
    assert a.requests == b.requests
