"""Tests for the energy model."""

import pytest

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import make_kernel
from repro.memsim import MemCounters, Stream
from repro.models.energy import DEFAULT_ENERGY_MODEL, EnergyModel


def counters_with(requests: int) -> MemCounters:
    c = MemCounters()
    c.record(Stream.EDGE_ADJ, reads=requests)
    return c


def test_energy_breakdown_adds_up():
    model = EnergyModel(joules_per_line=1e-9, joules_per_instruction=1e-12)
    out = model.energy(counters_with(1000), instructions=1e6)
    assert out["dram"] == pytest.approx(1e-6)
    assert out["core"] == pytest.approx(1e-6)
    assert out["total"] == pytest.approx(2e-6)


def test_validation():
    with pytest.raises(ValueError):
        EnergyModel(joules_per_line=0)
    with pytest.raises(ValueError):
        DEFAULT_ENERGY_MODEL.breakeven_instruction_ratio(0, 1)


def test_breakeven_ratio_properties():
    model = DEFAULT_ENERGY_MODEL
    # No traffic reduction -> no instruction headroom.
    assert model.breakeven_instruction_ratio(1.0, 7.0) == pytest.approx(1.0)
    # More reduction -> more headroom; monotone.
    r2 = model.breakeven_instruction_ratio(2.0, 7.0)
    r4 = model.breakeven_instruction_ratio(4.0, 7.0)
    assert 1.0 < r2 < r4


def test_pb_instruction_blowup_is_under_breakeven():
    """The paper's trade (4x instructions for ~3x traffic) saves energy."""
    graph = build_csr(uniform_random_graph(32768, 8, seed=121))
    base = make_kernel(graph, "baseline")
    dpb = make_kernel(graph, "dpb")
    base_counters = base.measure(1)
    dpb_counters = dpb.measure(1)
    model = DEFAULT_ENERGY_MODEL
    reduction = base_counters.total_requests / dpb_counters.total_requests
    blowup = dpb.instruction_count() / base.instruction_count()
    headroom = model.breakeven_instruction_ratio(
        reduction, base.instruction_count() / base_counters.total_requests
    )
    assert blowup < headroom
    # And the direct computation agrees.
    e_base = model.energy(base_counters, base.instruction_count())["total"]
    e_dpb = model.energy(dpb_counters, dpb.instruction_count())["total"]
    assert e_dpb < e_base


def test_energy_loss_on_high_locality_graph():
    from repro.graphs import load_graph

    web = load_graph("web", scale=0.5)
    base = make_kernel(web, "baseline")
    dpb = make_kernel(web, "dpb")
    model = DEFAULT_ENERGY_MODEL
    e_base = model.energy(base.measure(1), base.instruction_count())["total"]
    e_dpb = model.energy(dpb.measure(1), dpb.instruction_count())["total"]
    assert e_dpb > e_base  # blocking wastes energy when locality is free
