"""Tests for the Section V communication models.

The decisive tests here mirror the paper's own validation: the analytic
line counts must agree with the cache simulator on uniform random graphs.
"""

import math

import pytest

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import make_kernel
from repro.models import (
    ModelParams,
    SIMULATED_MACHINE,
    detailed_cb_edgelist,
    detailed_pb,
    detailed_pull,
    expected_touched_lines,
    paper_cb_csr_reads,
    paper_cb_edgelist_reads,
    paper_pb_reads,
    paper_pb_writes,
    paper_pull_reads,
    pb_beats_cb_blocks,
    pb_beats_pull_line_size,
)


def params(n=65536, k=16.0, b=16, c=4096):
    return ModelParams(n=n, k=k, b=b, c=c)


def test_paper_pull_formula_components():
    p = params()
    # kn(1-c/n) + 3n/b + kn/b
    expected = p.m * p.miss_rate + 3 * p.n / p.b + p.m / p.b
    assert paper_pull_reads(p) == pytest.approx(expected)


def test_miss_rate_clamped_for_cache_resident_graphs():
    p = params(n=1024, c=4096)
    assert p.miss_rate == 0.0
    assert pb_beats_pull_line_size(p) == math.inf


def test_paper_cb_formulas():
    p = params()
    assert paper_cb_csr_reads(p, r=32) == pytest.approx((16 + 96 + 1) * p.n / p.b)
    assert paper_cb_edgelist_reads(p, r=32) == pytest.approx((32 + 32 + 1) * p.n / p.b)


def test_edge_list_blocks_beat_csr_blocks_when_sparse():
    """The paper's rule: edge-list storage wins when k < 2r."""
    p = params(k=8.0)
    r = 32  # k=8 < 2r=64
    assert paper_cb_edgelist_reads(p, r) < paper_cb_csr_reads(p, r)
    p_dense = params(k=100.0)
    assert paper_cb_edgelist_reads(p_dense, r) > paper_cb_csr_reads(p_dense, r)


def test_paper_pb_formulas():
    p = params()
    assert paper_pb_reads(p) == pytest.approx((3 + 3 / 16) * p.m / p.b)
    dpb = paper_pb_writes(p, reuse_destinations=True)
    pb = paper_pb_writes(p, reuse_destinations=False)
    assert dpb == pytest.approx((1 + 1 / 16) * p.m / p.b)
    assert pb - dpb == pytest.approx(p.m / p.b)  # destination re-writes


def test_pb_beats_pull_crossover():
    # b >= 3/(1-c/n): with c/n = 1/16, threshold ~3.2 words -> b=16 wins.
    p = params()
    assert pb_beats_pull_line_size(p) < p.b
    assert paper_pb_reads(p) < paper_pull_reads(p)
    # With a cache nearly as large as the graph the threshold explodes.
    p_cached = params(n=4608, c=4096)
    assert pb_beats_pull_line_size(p_cached) > p_cached.b


def test_pb_beats_cb_crossover_consistent_with_formulas():
    p = params()
    r_threshold = pb_beats_cb_blocks(p)  # 2k + 2
    r_low = int(r_threshold) - 4
    r_high = int(r_threshold) + 4
    # Compare total communication: reads + writes.
    pb_total = paper_pb_reads(p) + paper_pb_writes(p)
    cb_low = paper_cb_edgelist_reads(p, r_low) + p.n / p.b
    cb_high = paper_cb_edgelist_reads(p, r_high) + p.n / p.b
    assert cb_low < pb_total < cb_high


def test_expected_touched_lines_limits():
    assert expected_touched_lines(100, 0) == 0.0
    assert expected_touched_lines(100, 10**6) == pytest.approx(100.0)
    assert expected_touched_lines(0, 10) == 0.0
    # One access touches exactly one line.
    assert expected_touched_lines(100, 1) == pytest.approx(1.0)


def test_params_validation():
    with pytest.raises(ValueError):
        ModelParams(n=0, k=1, b=16, c=16)
    with pytest.raises(ValueError):
        paper_cb_csr_reads(params(), r=0)


# ----------------------------------------------------------------------
# model vs simulator (the paper's Figure 3 style validation)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def urand_graph():
    return build_csr(uniform_random_graph(32768, 8, seed=51))


@pytest.fixture(scope="module")
def urand_params(urand_graph):
    m = SIMULATED_MACHINE
    return ModelParams(
        n=urand_graph.num_vertices,
        k=urand_graph.average_degree,
        b=m.words_per_line,
        c=m.cache_words,
    )


def test_detailed_pull_matches_simulator(urand_graph, urand_params):
    counters = make_kernel(urand_graph, "baseline").measure(1)
    model = detailed_pull(urand_params)
    assert counters.total_reads == pytest.approx(model["reads"], rel=0.02)
    assert counters.total_writes == pytest.approx(model["writes"], rel=0.02)


def test_detailed_cb_matches_simulator(urand_graph, urand_params):
    kernel = make_kernel(urand_graph, "cb")
    counters = kernel.measure(1)
    model = detailed_cb_edgelist(urand_params, kernel.num_blocks)
    assert counters.total_reads == pytest.approx(model["reads"], rel=0.02)
    assert counters.total_writes == pytest.approx(model["writes"], rel=0.02)


@pytest.mark.parametrize("method,reuse", [("pb", False), ("dpb", True)])
def test_detailed_pb_matches_simulator(urand_graph, urand_params, method, reuse):
    counters = make_kernel(urand_graph, method).measure(1)
    model = detailed_pb(urand_params, reuse_destinations=reuse)
    assert counters.total_reads == pytest.approx(model["reads"], rel=0.02)
    assert counters.total_writes == pytest.approx(model["writes"], rel=0.02)


def test_paper_model_close_to_simulator_leading_order(urand_graph, urand_params):
    """The paper's own (coarser) pull model is within ~15% of measurement."""
    counters = make_kernel(urand_graph, "baseline").measure(1)
    assert counters.total_reads == pytest.approx(
        paper_pull_reads(urand_params), rel=0.15
    )
