"""Tests for the MLP-coupled bandwidth model (Table II's reads/s column)."""

import pytest

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import make_kernel
from repro.kernels.priorwork import CSBStyle, LigraStyle
from repro.memsim import MemCounters, Stream
from repro.models import SIMULATED_MACHINE
from repro.models.performance import (
    bottleneck_time,
    mlp_coupled_time,
    mlp_effective_bandwidth,
)


def test_no_irregular_accesses_keeps_peak_bandwidth():
    bw = mlp_effective_bandwidth(SIMULATED_MACHINE, instructions=1e9, irregular_accesses=0)
    assert bw == SIMULATED_MACHINE.mem_bandwidth_requests


def test_bandwidth_decreases_with_instruction_pressure():
    low = mlp_effective_bandwidth(SIMULATED_MACHINE, 7.5e9, 1e9)
    high = mlp_effective_bandwidth(SIMULATED_MACHINE, 30e9, 1e9)
    assert high < low < SIMULATED_MACHINE.mem_bandwidth_requests


def test_reproduces_table_ii_baseline_utilization():
    """Baseline: 16.2 G instructions over 2 147 M gathers -> ~911 M reads/s."""
    bw = mlp_effective_bandwidth(SIMULATED_MACHINE, 16.2e9, 2147.5e6)
    assert bw == pytest.approx(911e6, rel=0.1)


def test_reproduces_table_ii_csb_utilization():
    """CSB: 58.4 G instructions -> ~608 M reads/s measured."""
    bw = mlp_effective_bandwidth(SIMULATED_MACHINE, 58.4e9, 2147.5e6)
    assert bw == pytest.approx(608e6, rel=0.15)


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(32768, 8, seed=171))


def test_coupled_time_slows_instruction_bloated_gather_codes(graph):
    """CSB moves similar lines to the baseline but takes visibly longer
    under the coupled model — unlike under the plain bottleneck model."""
    base = make_kernel(graph, "baseline", SIMULATED_MACHINE)
    csb = CSBStyle(graph, SIMULATED_MACHINE)
    base_counters = base.measure(1)
    csb_counters = csb.measure(1)
    t_base = mlp_coupled_time(SIMULATED_MACHINE, base_counters, base.instruction_count())
    t_csb = mlp_coupled_time(SIMULATED_MACHINE, csb_counters, csb.instruction_count())
    assert t_csb.total > 1.4 * t_base.total


def test_coupled_time_barely_affects_streaming_kernels(graph):
    """DPB's traffic is nearly all sequential: the coupling is a no-op."""
    dpb = make_kernel(graph, "dpb", SIMULATED_MACHINE)
    counters = dpb.measure(1)
    instructions = dpb.instruction_count()
    plain = bottleneck_time(SIMULATED_MACHINE, counters.total_requests, instructions)
    coupled = mlp_coupled_time(SIMULATED_MACHINE, counters, instructions).total
    assert coupled == pytest.approx(plain, rel=0.1)
    # Most of DPB's requests are indeed sequential.
    assert counters.irregular_requests < 0.2 * counters.total_requests


def test_pull_traffic_is_mostly_irregular(graph):
    base = make_kernel(graph, "baseline", SIMULATED_MACHINE)
    counters = base.measure(1)
    assert counters.irregular_requests > 0.7 * counters.total_requests


def test_ligra_keeps_high_utilization(graph):
    """Ligra reads a lot but stays bandwidth-efficient (few instructions
    per gather) — Table II's 877.8 M reads/s next to the baseline's 911."""
    ligra = LigraStyle(graph, SIMULATED_MACHINE)
    counters = ligra.measure(1)
    bw = mlp_effective_bandwidth(
        SIMULATED_MACHINE, ligra.instruction_count(), counters.irregular_accesses
    )
    base = make_kernel(graph, "baseline", SIMULATED_MACHINE)
    base_bw = mlp_effective_bandwidth(
        SIMULATED_MACHINE, base.instruction_count(), base.measure(1).irregular_accesses
    )
    assert bw > 0.9 * base_bw


def test_merge_carries_irregular_counters():
    a = MemCounters()
    a.record(Stream.VERTEX_CONTRIB, reads=5, accesses=10, irregular=True)
    b = MemCounters()
    b.record(Stream.VERTEX_CONTRIB, reads=7, accesses=9, irregular=True)
    a.merge(b)
    assert a.irregular_requests == 12
    assert a.irregular_accesses == 19
