"""Tests for the GAIL metric helpers."""

import pytest

from repro.memsim import MemCounters, Stream
from repro.models import GailMetrics, gail_metrics


def make_counters(reads=100, writes=20):
    c = MemCounters()
    c.record(Stream.EDGE_ADJ, reads=reads, writes=writes)
    return c


def test_ratios():
    m = gail_metrics(
        num_edges=200, counters=make_counters(), instructions=1000.0, seconds=2.0
    )
    assert m.requests_per_edge == pytest.approx(0.6)
    assert m.reads_per_edge == pytest.approx(0.5)
    assert m.writes_per_edge == pytest.approx(0.1)
    assert m.instructions_per_edge == pytest.approx(5.0)
    assert m.seconds_per_edge == pytest.approx(0.01)
    assert m.teps == pytest.approx(100.0)


def test_zero_time_gives_infinite_teps():
    m = GailMetrics(0, 0, 0, 0, 0.0)
    assert m.teps == float("inf")


def test_rejects_nonpositive_edges():
    with pytest.raises(ValueError):
        gail_metrics(0, make_counters(), 1.0, 1.0)
