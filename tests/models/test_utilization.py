"""Tests for the cache-line utilization (goodput) metric."""

import pytest

from repro.graphs import build_csr, load_graph, uniform_random_graph
from repro.kernels import make_kernel
from repro.models.utilization import line_utilization, useful_words


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(32768, 8, seed=231))


def test_useful_words_linear(graph):
    assert useful_words("baseline", graph) == pytest.approx(
        2 * graph.num_edges + 7 * graph.num_vertices
    )
    with pytest.raises(KeyError):
        useful_words("quantum", graph)


def test_blocking_raises_utilization(graph):
    """The paper's mechanism in one number: PB/DPB use nearly every word
    they move; the low-locality baseline wastes most of each line."""
    util = {}
    for method in ("baseline", "cb", "pb", "dpb"):
        counters = make_kernel(graph, method).measure(1)
        util[method] = line_utilization(method, graph, counters)
    assert util["baseline"] < 0.35
    assert util["dpb"] > 0.85
    assert util["pb"] > 0.85
    assert util["baseline"] < util["cb"] < util["dpb"]


def test_high_locality_baseline_already_utilizes():
    web = load_graph("web", scale=0.5)
    counters = make_kernel(web, "baseline").measure(1)
    base_util = line_utilization("baseline", web, counters)
    # The crawl-ordered layout makes most transferred words useful — hits
    # let words be consumed repeatedly, so goodput can approach or top 1.
    assert base_util > 0.7
    # And it crushes the low-locality baseline's goodput.
    urand = build_csr(uniform_random_graph(32768, 8, seed=233))
    urand_util = line_utilization(
        "baseline", urand, make_kernel(urand, "baseline").measure(1)
    )
    assert base_util > 2 * urand_util


def test_utilization_guards():
    from repro.memsim import MemCounters

    g = build_csr(uniform_random_graph(64, 2, seed=232))
    empty = MemCounters()
    assert line_utilization("baseline", g, empty) == 1.0
    with pytest.raises(ValueError):
        line_utilization("baseline", g, empty, words_per_line=0)
