"""Tests for the bottleneck time model and machine specs."""

import pytest

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import make_kernel
from repro.memsim import CacheConfig
from repro.models import (
    IVY_BRIDGE_SERVER,
    SIMULATED_MACHINE,
    MachineSpec,
    bottleneck_time,
    kernel_time,
    pb_phase_times,
)


def test_machine_geometry():
    assert IVY_BRIDGE_SERVER.words_per_line == 16
    assert SIMULATED_MACHINE.words_per_line == 16
    assert SIMULATED_MACHINE.cache_words == 4096
    # The scaled machine preserves the paper's b; c shrinks with the suite.
    assert IVY_BRIDGE_SERVER.cache_words > 1000 * SIMULATED_MACHINE.cache_words / 2


def test_expected_hit_rate():
    m = SIMULATED_MACHINE
    assert m.expected_hit_rate(m.cache_words) == 1.0
    assert m.expected_hit_rate(4 * m.cache_words) == pytest.approx(0.25)
    with pytest.raises(ValueError):
        m.expected_hit_rate(0)


def test_bottleneck_time_memory_bound():
    m = SIMULATED_MACHINE
    # Huge traffic, trivial instructions -> time ~ requests/bandwidth.
    t = bottleneck_time(m, requests=1e9, instructions=1.0)
    assert t == pytest.approx(1e9 / m.mem_bandwidth_requests, rel=0.25)


def test_bottleneck_time_instruction_bound():
    m = SIMULATED_MACHINE
    t = bottleneck_time(m, requests=1.0, instructions=1e12)
    assert t == pytest.approx(1e12 / m.instr_rate, rel=0.25)


def test_overlap_adds_fraction_of_smaller_term():
    m = MachineSpec(
        name="t",
        llc=CacheConfig(16 * 1024, 64),
        l1=CacheConfig(2 * 1024, 64),
        mem_bandwidth_requests=1e9,
        instr_rate=1e9,
        overlap=0.5,
    )
    # Equal resource times of 1s each -> total 1.5s.
    assert bottleneck_time(m, requests=1e9, instructions=1e9) == pytest.approx(1.5)


def test_l1_misses_add_stall_time():
    m = SIMULATED_MACHINE
    without = bottleneck_time(m, 1.0, 1.0)
    with_stalls = bottleneck_time(m, 1.0, 1.0, l1_misses=1e9)
    assert with_stalls > without


@pytest.fixture(scope="module")
def graph():
    return build_csr(uniform_random_graph(32768, 8, seed=61))


def test_paper_bottleneck_story(graph):
    """Baseline is memory-bound; PB is instruction-bound (Section VI)."""
    base = make_kernel(graph, "baseline")
    base_time = kernel_time(base, base.measure(1))
    assert base_time.bottleneck == "memory"

    pb = make_kernel(graph, "pb")
    pb_time = kernel_time(pb, pb.measure(1))
    assert pb_time.bottleneck == "instructions"


def test_blocking_still_faster_despite_instructions(graph):
    """Figure 4: DPB beats the baseline in modelled time on low-locality
    input even though it executes ~4x the instructions."""
    base = make_kernel(graph, "baseline")
    dpb = make_kernel(graph, "dpb")
    t_base = kernel_time(base, base.measure(1)).total
    t_dpb = kernel_time(dpb, dpb.measure(1)).total
    assert t_dpb < t_base


def test_phase_times_cover_phases(graph):
    kernel = make_kernel(graph, "dpb")
    times = pb_phase_times(kernel, kernel.measure(1))
    assert set(times) == {"binning", "accumulate", "apply"}
    assert all(t > 0 for t in times.values())
    # Apply is a small vector pass; the two main phases dominate.
    assert times["apply"] < times["binning"] + times["accumulate"]


def test_tiny_bins_slow_binning_via_l1(graph):
    """Figure 10-11: too many bins -> insertion points thrash L1 ->
    binning time rises while traffic stays flat."""
    wide = make_kernel(graph, "dpb", bin_width=2048)
    narrow = make_kernel(graph, "dpb", bin_width=32)  # 1024 bins >> L1 lines
    t_wide = pb_phase_times(wide, wide.measure(1))["binning"]
    t_narrow = pb_phase_times(narrow, narrow.measure(1))["binning"]
    assert t_narrow > 1.2 * t_wide
    # Communication, by contrast, barely moves (bin rounding only).
    req_wide = wide.measure(1).total_requests
    req_narrow = narrow.measure(1).total_requests
    assert req_narrow < 1.2 * req_wide
