"""Unit tests for :mod:`repro.graphs.io`."""

import numpy as np
import pytest

from repro.graphs import (
    EdgeList,
    build_csr,
    load_edge_list,
    load_npz,
    save_edge_list,
    save_npz,
    uniform_random_graph,
)
from repro.graphs.io import load_or_build


def test_npz_round_trip(tmp_path):
    g = build_csr(uniform_random_graph(200, 4, seed=1), symmetric=True)
    path = tmp_path / "g.npz"
    save_npz(path, g)
    loaded = load_npz(path)
    np.testing.assert_array_equal(loaded.offsets, g.offsets)
    np.testing.assert_array_equal(loaded.targets, g.targets)
    assert loaded.symmetric


def test_npz_round_trip_weighted(tmp_path):
    el = EdgeList(3, [0, 1], [1, 2], weights=[0.5, 1.5])
    g = build_csr(el, dedup=False)
    path = tmp_path / "w.npz"
    save_npz(path, g)
    loaded = load_npz(path)
    np.testing.assert_allclose(loaded.weights, g.weights)


def test_edge_list_text_round_trip(tmp_path):
    el = EdgeList(10, [0, 3, 7], [1, 4, 9])
    path = tmp_path / "g.el"
    save_edge_list(path, el)
    loaded = load_edge_list(path)
    np.testing.assert_array_equal(loaded.src, el.src)
    np.testing.assert_array_equal(loaded.dst, el.dst)
    assert loaded.num_vertices == 10


def test_edge_list_text_round_trip_weighted(tmp_path):
    el = EdgeList(5, [0, 1], [1, 2], weights=[0.25, 0.75])
    path = tmp_path / "g.wel"
    save_edge_list(path, el)
    loaded = load_edge_list(path)
    np.testing.assert_allclose(loaded.weights, [0.25, 0.75])


def test_edge_list_num_vertices_override(tmp_path):
    el = EdgeList(100, [0], [1])
    path = tmp_path / "g.el"
    save_edge_list(path, el)
    loaded = load_edge_list(path, num_vertices=100)
    assert loaded.num_vertices == 100


def test_load_or_build_caches(tmp_path):
    calls = []

    def factory():
        calls.append(1)
        return uniform_random_graph(100, 4, seed=2)

    path = tmp_path / "cache" / "g.npz"
    g1 = load_or_build(path, factory)
    g2 = load_or_build(path, factory)
    assert len(calls) == 1
    np.testing.assert_array_equal(g1.targets, g2.targets)
