"""Statistical properties of the generators (the locality knobs that make
the suite reproduce Figure 3's per-graph contrasts)."""

import numpy as np

from repro.graphs import (
    build_csr,
    citation_graph,
    community_graph,
    kronecker_graph,
    social_network_graph,
    uniform_random_graph,
    web_crawl_graph,
)


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution (0=uniform)."""
    v = np.sort(values.astype(np.float64))
    if v.sum() == 0:
        return 0.0
    n = v.size
    cumulative = np.cumsum(v)
    return float((n + 1 - 2 * (cumulative / cumulative[-1]).sum()) / n)


def test_uniform_random_degrees_concentrated():
    g = build_csr(uniform_random_graph(20000, 16, seed=1))
    degrees = np.asarray(g.out_degrees())
    # Poisson-like: low inequality, no heavy tail.
    assert gini(degrees) < 0.2
    assert degrees.max() < 5 * degrees.mean()


def test_kronecker_degrees_heavy_tailed():
    g = build_csr(kronecker_graph(14, 16, seed=2), symmetric=True)
    degrees = np.asarray(g.out_degrees())
    assert gini(degrees) > 0.55
    assert degrees.max() > 30 * max(degrees.mean(), 1)


def test_social_network_top_vertices_dominate_in_edges():
    g = build_csr(social_network_graph(20000, 16, seed=3))
    in_degrees = np.asarray(g.transposed().out_degrees())
    top_share = np.sort(in_degrees)[-200:].sum() / max(in_degrees.sum(), 1)
    assert top_share > 0.15  # top 1% of accounts get >15% of all follows
    assert in_degrees.max() > 50 * in_degrees.mean()  # celebrity hubs exist


def test_community_graph_modularity_signal():
    """Intra-community edges dominate when measured in community space."""
    size = 256
    el = community_graph(8192, 16, seed=4, community_size=size, intra_fraction=0.7)
    # Recover the hidden community id via the generator's permutation is
    # not possible from outside; instead verify clustering statistically:
    # the neighbor lists of adjacent vertices overlap far more than in a
    # uniform random graph of the same degree.
    g = build_csr(el, symmetric=True)
    rng = np.random.default_rng(0)
    overlaps = []
    for u in rng.integers(0, g.num_vertices, size=200):
        neigh = set(g.neighbors(int(u)).tolist())
        if len(neigh) < 2:
            continue
        v = next(iter(neigh))
        neigh_v = set(g.neighbors(int(v)).tolist())
        overlaps.append(len(neigh & neigh_v) / len(neigh))
    uniform = build_csr(uniform_random_graph(8192, 16, seed=5))
    base_overlaps = []
    for u in rng.integers(0, uniform.num_vertices, size=200):
        neigh = set(uniform.neighbors(int(u)).tolist())
        if len(neigh) < 2:
            continue
        v = next(iter(neigh))
        neigh_v = set(uniform.neighbors(int(v)).tolist())
        base_overlaps.append(len(neigh & neigh_v) / len(neigh))
    assert np.mean(overlaps) > 3 * max(np.mean(base_overlaps), 1e-3)


def test_citation_graph_is_acyclic():
    el = citation_graph(5000, 12, seed=6)
    g = build_csr(el)
    # Edges strictly decrease vertex id -> topological order exists trivially.
    assert np.all(g.targets < g.edge_sources())


def test_citation_recency_bias():
    el = citation_graph(20000, 12, seed=7, recency_weight=0.6)
    age = el.src.astype(np.int64) - el.dst.astype(np.int64)
    relative_age = age / np.maximum(el.src.astype(np.int64), 1)
    # A solid share of citations go to recent papers (age << src id).
    assert np.mean(relative_age < 0.05) > 0.25


def test_web_crawl_degree_independent_of_window():
    a = build_csr(web_crawl_graph(10000, 6, seed=8, window=64))
    b = build_csr(web_crawl_graph(10000, 6, seed=8, window=4096))
    assert abs(a.average_degree - b.average_degree) < 0.5


def test_generators_scale_invariance_of_degree():
    """Doubling n keeps the average directed degree (the suite's scaling
    assumption)."""
    for factory in (
        lambda n, s: uniform_random_graph(n, 12, seed=s),
        lambda n, s: social_network_graph(n, 12, seed=s),
        lambda n, s: citation_graph(n, 12, seed=s),
        lambda n, s: web_crawl_graph(n, 12, seed=s),
    ):
        small = build_csr(factory(4000, 9))
        large = build_csr(factory(8000, 10))
        assert abs(small.average_degree - large.average_degree) < 1.5
