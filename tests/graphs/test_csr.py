"""Unit tests for :mod:`repro.graphs.csr`."""

import numpy as np
import pytest

from repro.graphs import CSRGraph, EdgeList, build_csr, uniform_random_graph


def simple_graph() -> CSRGraph:
    # 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
    return CSRGraph(offsets=[0, 2, 3, 3, 4], targets=[1, 2, 2, 0])


def test_basic_properties():
    g = simple_graph()
    assert g.num_vertices == 4
    assert g.num_edges == 4
    assert g.average_degree == 1.0
    np.testing.assert_array_equal(g.out_degrees(), [2, 1, 0, 1])
    np.testing.assert_array_equal(g.neighbors(0), [1, 2])
    np.testing.assert_array_equal(g.neighbors(2), [])


def test_offsets_validation():
    with pytest.raises(ValueError, match="offsets\\[0\\]"):
        CSRGraph(offsets=[1, 2], targets=[0, 0])
    with pytest.raises(ValueError, match="non-decreasing"):
        CSRGraph(offsets=[0, 2, 1], targets=[0, 0])
    with pytest.raises(ValueError, match="equal len"):
        CSRGraph(offsets=[0, 3], targets=[0, 0])
    with pytest.raises(ValueError, match="target ids"):
        CSRGraph(offsets=[0, 1], targets=[5])


def test_edge_sources_expansion():
    g = simple_graph()
    np.testing.assert_array_equal(g.edge_sources(), [0, 0, 1, 3])


def test_to_edge_list_round_trip():
    g = simple_graph()
    el = g.to_edge_list()
    g2 = build_csr(el, dedup=False)
    np.testing.assert_array_equal(g.offsets, g2.offsets)
    np.testing.assert_array_equal(g.targets, g2.targets)


def test_transpose_reverses_edges():
    g = simple_graph()
    t = g.transposed()
    assert t.num_edges == g.num_edges
    np.testing.assert_array_equal(t.neighbors(2), [0, 1])
    np.testing.assert_array_equal(t.neighbors(0), [3])
    # Transposing twice returns the original object (cached).
    assert t.transposed() is g


def test_symmetric_transpose_aliases_self():
    el = EdgeList(3, [0, 1], [1, 2]).symmetrized()
    g = build_csr(el, symmetric=True)
    assert g.transposed() is g


def test_transpose_of_random_graph_is_involution():
    g = build_csr(uniform_random_graph(200, 4, seed=7, symmetric=False))
    t = g.transposed()
    # Edge sets must be exact mirrors.
    fwd = set(zip(g.edge_sources().tolist(), g.targets.tolist()))
    bwd = set(zip(t.targets.tolist(), t.edge_sources().tolist()))
    assert fwd == bwd


def test_transpose_carries_weights():
    g = CSRGraph(offsets=[0, 2, 2], targets=[0, 1], weights=[1.0, 2.0])
    t = g.transposed()
    assert t.is_weighted
    # Edge 0->1 (weight 2.0) becomes 1 in t.neighbors... check via pairs.
    pairs = {
        (int(s), int(d)): float(w)
        for s, d, w in zip(t.edge_sources(), t.targets, t.weights)
    }
    assert pairs == {(0, 0): 1.0, (1, 0): 2.0}


def test_edge_weights_accessor():
    g = CSRGraph(offsets=[0, 2, 2], targets=[0, 1], weights=[1.0, 2.0])
    np.testing.assert_allclose(g.edge_weights(0), [1.0, 2.0])
    unweighted = simple_graph()
    with pytest.raises(ValueError, match="unweighted"):
        unweighted.edge_weights(0)


def test_permuted_preserves_structure():
    g = simple_graph()
    perm = np.array([3, 2, 1, 0], dtype=np.int32)
    pg = g.permuted(perm)
    assert pg.num_edges == g.num_edges
    # Edge (0 -> 1) becomes (3 -> 2), etc.
    fwd = set(zip(g.edge_sources().tolist(), g.targets.tolist()))
    mapped = {(int(perm[s]), int(perm[d])) for s, d in fwd}
    got = set(zip(pg.edge_sources().tolist(), pg.targets.tolist()))
    assert mapped == got
