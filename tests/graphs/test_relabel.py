"""Unit tests for :mod:`repro.graphs.relabel`."""

import numpy as np
import pytest

from repro.graphs import (
    average_neighbor_distance,
    bandwidth_profile,
    bfs_permutation,
    build_csr,
    degree_sort_permutation,
    identity_permutation,
    invert_permutation,
    random_permutation,
    rcm_permutation,
    uniform_random_graph,
    web_crawl_graph,
)


def line_graph(n: int = 16):
    src = list(range(n - 1))
    dst = list(range(1, n))
    from repro.graphs import EdgeList

    return build_csr(EdgeList(n, src + dst, dst + src), symmetric=True)


def test_identity_permutation():
    perm = identity_permutation(5)
    np.testing.assert_array_equal(perm, [0, 1, 2, 3, 4])


def test_invert_permutation_round_trip():
    perm = random_permutation(100, seed=1)
    inv = invert_permutation(perm)
    np.testing.assert_array_equal(perm[inv], np.arange(100))
    np.testing.assert_array_equal(inv[perm], np.arange(100))


def test_random_permutation_is_permutation():
    perm = random_permutation(1000, seed=2)
    assert sorted(perm.tolist()) == list(range(1000))


def test_degree_sort_puts_hubs_first():
    g = build_csr(uniform_random_graph(500, 8, seed=3))
    perm = degree_sort_permutation(g)
    relabeled = g.permuted(perm)
    degrees = np.asarray(relabeled.out_degrees())
    assert np.all(np.diff(degrees) <= 0)  # non-increasing


def test_bfs_permutation_visits_everything():
    g = build_csr(uniform_random_graph(300, 4, seed=4))
    perm = bfs_permutation(g)
    assert sorted(perm.tolist()) == list(range(300))


def test_bfs_permutation_rejects_bad_source():
    g = line_graph(4)
    with pytest.raises(ValueError, match="source"):
        bfs_permutation(g, source=99)


def test_rcm_reduces_bandwidth_of_shuffled_line():
    g = line_graph(256)
    shuffled = g.permuted(random_permutation(256, seed=5))
    before = bandwidth_profile(shuffled)["mean_distance"]
    improved = shuffled.permuted(rcm_permutation(shuffled))
    after = bandwidth_profile(improved)["mean_distance"]
    assert after < before / 10  # a line graph relabels to bandwidth ~1


def test_bandwidth_profile_of_line_graph():
    g = line_graph(64)
    profile = bandwidth_profile(g)
    assert profile["max_distance"] == 1.0
    assert profile["mean_distance"] == 1.0
    assert profile["within_line_fraction"] == 1.0


def test_bandwidth_profile_empty_graph():
    from repro.graphs import EdgeList

    g = build_csr(EdgeList(4, [], []))
    assert bandwidth_profile(g)["mean_distance"] == 0.0


def test_random_relabel_destroys_web_locality():
    g = build_csr(web_crawl_graph(8192, 6, seed=6, window=256))
    shuffled = g.permuted(random_permutation(8192, seed=7))
    assert (
        bandwidth_profile(shuffled)["mean_distance"]
        > 3 * bandwidth_profile(g)["mean_distance"]
    )


def test_average_neighbor_distance_orders_layouts():
    g = build_csr(web_crawl_graph(8192, 8, seed=8, window=128))
    shuffled = g.permuted(random_permutation(8192, seed=9))
    assert average_neighbor_distance(g) < average_neighbor_distance(shuffled)
