"""Unit tests for :mod:`repro.graphs.edgelist`."""

import numpy as np
import pytest

from repro.graphs import EdgeList


def test_basic_construction():
    el = EdgeList(4, [0, 1, 2], [1, 2, 3])
    assert el.num_vertices == 4
    assert el.num_edges == 3
    assert not el.is_weighted
    assert el.src.dtype == np.int32
    assert el.dst.dtype == np.int32


def test_empty_edge_list():
    el = EdgeList(5, [], [])
    assert el.num_edges == 0
    assert el.reversed().num_edges == 0
    assert el.symmetrized().num_edges == 0


def test_rejects_out_of_range_ids():
    with pytest.raises(ValueError, match="vertex ids"):
        EdgeList(3, [0, 1], [1, 3])
    with pytest.raises(ValueError, match="vertex ids"):
        EdgeList(3, [-1], [0])


def test_rejects_mismatched_lengths():
    with pytest.raises(ValueError, match="same length"):
        EdgeList(3, [0, 1], [1])


def test_rejects_mismatched_weights():
    with pytest.raises(ValueError, match="weights"):
        EdgeList(3, [0, 1], [1, 2], weights=[1.0])


def test_reversed_swaps_endpoints():
    el = EdgeList(4, [0, 1], [2, 3])
    rev = el.reversed()
    np.testing.assert_array_equal(rev.src, [2, 3])
    np.testing.assert_array_equal(rev.dst, [0, 1])


def test_symmetrized_doubles_edges_and_keeps_weights():
    el = EdgeList(4, [0, 1], [2, 3], weights=[1.5, 2.5])
    sym = el.symmetrized()
    assert sym.num_edges == 4
    np.testing.assert_array_equal(sym.src, [0, 1, 2, 3])
    np.testing.assert_array_equal(sym.dst, [2, 3, 0, 1])
    np.testing.assert_allclose(sym.weights, [1.5, 2.5, 1.5, 2.5])


def test_permuted_relabels_endpoints_preserving_order():
    el = EdgeList(3, [0, 1, 2], [1, 2, 0])
    perm = np.array([2, 0, 1], dtype=np.int32)
    out = el.permuted(perm)
    np.testing.assert_array_equal(out.src, [2, 0, 1])
    np.testing.assert_array_equal(out.dst, [0, 1, 2])


def test_permuted_rejects_wrong_shape():
    el = EdgeList(3, [0], [1])
    with pytest.raises(ValueError, match="perm"):
        el.permuted(np.arange(2))


def test_weighted_flag():
    el = EdgeList(2, [0], [1], weights=[3.0])
    assert el.is_weighted
    assert el.weights.dtype == np.float32
