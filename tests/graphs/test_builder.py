"""Unit tests for :mod:`repro.graphs.builder`."""

import numpy as np
import pytest

from repro.graphs import EdgeList, build_csr, deduplicate_edges, remove_self_loops


def test_remove_self_loops():
    el = EdgeList(3, [0, 1, 2], [0, 2, 2])
    out = remove_self_loops(el)
    assert out.num_edges == 1
    assert (int(out.src[0]), int(out.dst[0])) == (1, 2)


def test_dedup_unweighted():
    el = EdgeList(3, [0, 0, 0, 1], [1, 1, 2, 2])
    out = deduplicate_edges(el)
    pairs = sorted(zip(out.src.tolist(), out.dst.tolist()))
    assert pairs == [(0, 1), (0, 2), (1, 2)]


def test_dedup_weighted_sums_weights():
    el = EdgeList(3, [0, 0, 1], [1, 1, 2], weights=[1.0, 2.5, 4.0])
    out = deduplicate_edges(el)
    pairs = {
        (int(s), int(d)): float(w) for s, d, w in zip(out.src, out.dst, out.weights)
    }
    assert pairs == {(0, 1): 3.5, (1, 2): 4.0}


def test_build_sorts_neighbors():
    el = EdgeList(4, [0, 0, 0], [3, 1, 2])
    g = build_csr(el, dedup=False)
    np.testing.assert_array_equal(g.neighbors(0), [1, 2, 3])


def test_build_preserves_insertion_order_when_unsorted():
    el = EdgeList(4, [0, 0, 0], [3, 1, 2])
    g = build_csr(el, dedup=False, sort_neighbors=False)
    np.testing.assert_array_equal(g.neighbors(0), [3, 1, 2])


def test_symmetrize_doubles_degree():
    el = EdgeList(4, [0, 1, 2], [1, 2, 3])
    g = build_csr(el, symmetrize=True)
    assert g.symmetric
    assert g.num_edges == 6
    assert g.transposed() is g


def test_symmetrize_then_dedup_collapses_mutual_edges():
    # 0<->1 given in both directions: symmetrize makes 4 copies, dedup -> 2.
    el = EdgeList(2, [0, 1], [1, 0])
    g = build_csr(el, symmetrize=True)
    assert g.num_edges == 2


def test_weighted_build_carries_weights_sorted():
    el = EdgeList(3, [0, 0], [2, 1], weights=[5.0, 7.0])
    g = build_csr(el, dedup=False)
    np.testing.assert_array_equal(g.neighbors(0), [1, 2])
    np.testing.assert_allclose(g.edge_weights(0), [7.0, 5.0])


def test_build_empty_graph():
    g = build_csr(EdgeList(3, [], []))
    assert g.num_vertices == 3
    assert g.num_edges == 0


def test_isolated_trailing_vertices_kept():
    g = build_csr(EdgeList(10, [0], [1]))
    assert g.num_vertices == 10
    assert g.out_degrees()[9] == 0
