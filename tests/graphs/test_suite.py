"""Unit tests for :mod:`repro.graphs.suite`."""

import numpy as np
import pytest

from repro.graphs import (
    SUITE,
    SUITE_NAMES,
    LOW_LOCALITY_NAMES,
    bandwidth_profile,
    load_graph,
    load_suite,
    suite_table_rows,
)

SCALE = 0.04  # keep unit tests fast; benches use scale=1


def test_suite_has_eight_graphs():
    assert len(SUITE_NAMES) == 8
    assert set(SUITE_NAMES) == {
        "urand", "kron", "twitter", "friend", "cite", "coauth", "web", "webrnd",
    }


def test_low_locality_excludes_only_web():
    assert set(SUITE_NAMES) - set(LOW_LOCALITY_NAMES) == {"web"}


def test_unknown_graph_name():
    with pytest.raises(KeyError, match="unknown suite graph"):
        load_graph("nope")


@pytest.mark.parametrize("name", SUITE_NAMES)
def test_each_graph_loads_with_expected_symmetry(name):
    g = load_graph(name, scale=SCALE)
    assert g.num_vertices > 0
    assert g.num_edges > 0
    assert g.symmetric == SUITE[name].symmetric
    if g.symmetric:
        assert g.transposed() is g


@pytest.mark.parametrize("name", SUITE_NAMES)
def test_degree_lands_near_paper_target(name):
    g = load_graph(name, scale=SCALE)
    target = SUITE[name].paper_degree
    assert 0.5 * target <= g.average_degree <= 1.7 * target


def test_determinism_across_loads():
    a = load_graph("urand", scale=SCALE, seed=1)
    b = load_graph("urand", scale=SCALE, seed=1)
    np.testing.assert_array_equal(a.targets, b.targets)


def test_seed_changes_graph():
    a = load_graph("urand", scale=SCALE, seed=1)
    b = load_graph("urand", scale=SCALE, seed=2)
    assert not np.array_equal(a.targets, b.targets)


def test_web_and_webrnd_share_topology():
    web = load_graph("web", scale=SCALE, seed=5)
    webrnd = load_graph("webrnd", scale=SCALE, seed=5)
    assert web.num_vertices == webrnd.num_vertices
    assert web.num_edges == webrnd.num_edges
    # Same degree *distribution* (relabelling permutes it).
    assert sorted(web.out_degrees().tolist()) == sorted(webrnd.out_degrees().tolist())


def test_webrnd_has_worse_layout_than_web():
    web = load_graph("web", scale=SCALE)
    webrnd = load_graph("webrnd", scale=SCALE)
    assert (
        bandwidth_profile(webrnd)["mean_distance"]
        > 2 * bandwidth_profile(web)["mean_distance"]
    )


def test_load_suite_and_table_rows():
    graphs = load_suite(scale=SCALE, names=("urand", "web"))
    rows = suite_table_rows(graphs)
    assert len(rows) == 2
    assert rows[0][0] == "urand"
    assert rows[0][2] == graphs["urand"].num_vertices
