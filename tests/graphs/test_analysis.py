"""Tests for graph characterization and strategy recommendation."""

import numpy as np
import pytest

from repro.graphs import build_csr, kronecker_graph, load_graph, uniform_random_graph
from repro.graphs.analysis import (
    degree_statistics,
    describe,
    estimate_gather_hit_rate,
)
from repro.kernels import make_kernel
from repro.models import SIMULATED_MACHINE


@pytest.fixture(scope="module")
def urand():
    return build_csr(uniform_random_graph(32768, 8, seed=181))


def test_degree_statistics(urand):
    stats = degree_statistics(urand)
    assert stats["mean"] == pytest.approx(urand.average_degree)
    assert stats["max"] >= stats["mean"]
    assert 0 <= stats["zero_fraction"] < 0.05


def test_degree_statistics_empty_graph():
    from repro.graphs import EdgeList

    g = build_csr(EdgeList(3, [], []))
    stats = degree_statistics(g)
    assert stats["mean"] == 0.0
    assert stats["zero_fraction"] == 1.0


def test_hit_rate_estimate_matches_full_simulation(urand):
    """The sampled estimate tracks the exact gather hit rate."""
    estimated = estimate_gather_hit_rate(urand, SIMULATED_MACHINE, sample_edges=50_000)
    counters = make_kernel(urand, "baseline", SIMULATED_MACHINE).measure(1)
    from repro.memsim import Stream

    gathers = counters.accesses[Stream.VERTEX_CONTRIB]
    # Exclude the sequential contrib-pass accesses (n writes + reads).
    irregular_hits = counters.hits[Stream.VERTEX_CONTRIB]
    exact = irregular_hits / counters.irregular_accesses
    assert estimated == pytest.approx(exact, abs=0.1)


def test_hit_rate_high_for_local_graph():
    web = load_graph("web", scale=0.5)
    webrnd = load_graph("webrnd", scale=0.5)
    assert estimate_gather_hit_rate(web) > estimate_gather_hit_rate(webrnd) + 0.3


def test_hit_rate_perfect_for_cache_resident_graph():
    small = build_csr(uniform_random_graph(1024, 8, seed=182))
    # 1024 vertices = 64 lines << the 256-line LLC: everything hits after
    # compulsory misses.
    assert estimate_gather_hit_rate(small) > 0.9


def test_describe_recommends_blocking_for_large_random(urand):
    profile = describe(urand)
    # k=8 sits at the CB/DPB decision boundary for this n/c; either way,
    # blocking — not the baseline — must be recommended.
    assert profile.recommended_method in ("cb", "dpb")
    assert profile.is_low_locality()
    assert profile.vertex_to_cache_ratio == pytest.approx(8.0)


def test_describe_recommends_dpb_for_large_sparse():
    sparse = build_csr(uniform_random_graph(131072, 6, seed=184))
    assert describe(sparse).recommended_method == "dpb"


def test_describe_overrides_to_baseline_for_web_layout():
    web = load_graph("web", scale=0.5)
    profile = describe(web)
    assert profile.recommended_method == "baseline"
    assert not profile.is_low_locality()
    # Same topology, shuffled labels: recommendation flips to blocking.
    webrnd = load_graph("webrnd", scale=0.5)
    assert describe(webrnd).recommended_method in ("dpb", "cb")


def test_describe_skew_detects_kron():
    kron = build_csr(kronecker_graph(13, 8, seed=183), symmetric=True)
    profile = describe(kron)
    assert profile.degree_skew > 20


def test_hit_rate_estimate_deterministic(urand):
    a = estimate_gather_hit_rate(urand, SIMULATED_MACHINE, seed=7)
    b = estimate_gather_hit_rate(urand, SIMULATED_MACHINE, seed=7)
    assert a == b


def test_describe_deterministic(urand):
    assert describe(urand, seed=3) == describe(urand, seed=3)
