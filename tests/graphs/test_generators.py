"""Unit tests for :mod:`repro.graphs.generators`."""

import numpy as np
import pytest

from repro.graphs import (
    build_csr,
    citation_graph,
    coauthorship_graph,
    community_graph,
    kronecker_graph,
    social_network_graph,
    uniform_random_graph,
    web_crawl_graph,
)


def test_uniform_random_degree_and_symmetry():
    el = uniform_random_graph(1000, 8.0, seed=1, symmetric=True)
    assert el.num_vertices == 1000
    assert el.num_edges == 8000
    # Every edge must appear in both directions.
    fwd = set(zip(el.src.tolist(), el.dst.tolist()))
    assert all((d, s) in fwd for s, d in fwd)


def test_uniform_random_directed():
    el = uniform_random_graph(500, 5.0, seed=2, symmetric=False)
    assert el.num_edges == 2500


def test_uniform_random_determinism():
    a = uniform_random_graph(100, 4.0, seed=3)
    b = uniform_random_graph(100, 4.0, seed=3)
    np.testing.assert_array_equal(a.src, b.src)
    np.testing.assert_array_equal(a.dst, b.dst)


def test_uniform_random_rejects_bad_args():
    with pytest.raises(ValueError):
        uniform_random_graph(0, 4.0)
    with pytest.raises(ValueError):
        uniform_random_graph(10, -1.0)


def test_kronecker_size_and_skew():
    el = kronecker_graph(10, 16.0, seed=4)
    assert el.num_vertices == 1024
    g = build_csr(el, symmetric=True)
    degrees = np.asarray(g.out_degrees())
    # Strong power law: max degree far above the mean, many isolated vertices.
    assert degrees.max() > 8 * degrees.mean()
    assert (degrees == 0).sum() > 0


def test_kronecker_rejects_bad_initiator():
    with pytest.raises(ValueError, match="sum to 1"):
        kronecker_graph(4, 4.0, initiator=(0.5, 0.5, 0.5, 0.5))


def test_social_network_in_degree_skew():
    el = social_network_graph(2000, 16.0, seed=5)
    g = build_csr(el)
    in_degrees = np.asarray(g.transposed().out_degrees())
    # Celebrity effect: top vertex has a large share of all follows.
    assert in_degrees.max() > 20 * max(in_degrees.mean(), 1)


def test_community_graph_symmetric_and_clustered():
    el = community_graph(4096, 12.0, seed=6, community_size=256, intra_fraction=0.8)
    fwd = set(zip(el.src.tolist(), el.dst.tolist()))
    assert all((d, s) in fwd for s, d in fwd)


def test_citation_graph_edges_point_backward():
    el = citation_graph(3000, 10.0, seed=7)
    assert np.all(el.dst < el.src)


def test_coauthorship_degree_near_target():
    el = coauthorship_graph(5000, 10.0, seed=8)
    g = build_csr(el, symmetric=True)
    assert 4.0 < g.average_degree < 20.0


def test_web_crawl_is_banded():
    el = web_crawl_graph(20000, 6.0, seed=9, window=512, long_range_fraction=0.05)
    dist = np.abs(el.src.astype(np.int64) - el.dst.astype(np.int64))
    # The bulk of edges fall inside the window.
    assert np.mean(dist <= 512) > 0.9


def test_web_crawl_long_range_fraction():
    el = web_crawl_graph(20000, 6.0, seed=10, window=64, long_range_fraction=0.5)
    dist = np.abs(el.src.astype(np.int64) - el.dst.astype(np.int64))
    assert np.mean(dist > 64) > 0.3


@pytest.mark.parametrize(
    "factory",
    [
        lambda rng: uniform_random_graph(512, 4, rng),
        lambda rng: kronecker_graph(9, 4, rng),
        lambda rng: social_network_graph(512, 4, rng),
        lambda rng: community_graph(512, 4, rng, community_size=64),
        lambda rng: citation_graph(512, 4, rng),
        lambda rng: coauthorship_graph(512, 4, rng),
        lambda rng: web_crawl_graph(512, 4, rng),
    ],
)
def test_generators_accept_generator_instance(factory):
    rng = np.random.default_rng(0)
    el = factory(rng)
    assert el.num_edges > 0
    assert el.src.max() < el.num_vertices


def test_grid_graph_structure():
    from repro.graphs import grid_graph

    el = grid_graph(4, 5)
    assert el.num_vertices == 20
    # 2*(rows*(cols-1) + (rows-1)*cols) directed edges after symmetrize.
    assert el.num_edges == 2 * (4 * 4 + 3 * 5)
    fwd = set(zip(el.src.tolist(), el.dst.tolist()))
    assert (0, 1) in fwd and (1, 0) in fwd  # right neighbor
    assert (0, 5) in fwd and (5, 0) in fwd  # down neighbor
    assert (4, 5) not in fwd  # no wraparound across row ends


def test_grid_graph_is_ideal_diagonal_layout():
    from repro.graphs import bandwidth_profile, build_csr, grid_graph

    g = build_csr(grid_graph(32, 16), symmetric=True)
    profile = bandwidth_profile(g)
    # Matrix bandwidth == number of columns: the narrow diagonal.
    assert profile["max_distance"] == 16
    assert profile["mean_distance"] < 16


def test_grid_graph_validation():
    import pytest as _pytest

    from repro.graphs import grid_graph

    with _pytest.raises(ValueError):
        grid_graph(0, 5)
