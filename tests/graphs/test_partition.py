"""Unit tests for :mod:`repro.graphs.partition`."""

import numpy as np
import pytest

from repro.graphs import (
    build_csr,
    choose_block_width,
    num_blocks_for_width,
    partition_by_destination,
    uniform_random_graph,
)


@pytest.fixture()
def graph():
    return build_csr(uniform_random_graph(1000, 8, seed=11))


def test_num_blocks_for_width():
    assert num_blocks_for_width(1000, 256) == 4
    assert num_blocks_for_width(1024, 256) == 4
    assert num_blocks_for_width(1, 256) == 1


def test_choose_block_width_power_of_two():
    width = choose_block_width(10**6, cache_words=8192)
    assert width & (width - 1) == 0
    assert width <= 4096  # half the cache by default


def test_partition_covers_all_edges(graph):
    part = partition_by_destination(graph, 256)
    assert part.num_edges == graph.num_edges
    assert part.num_blocks == 4


def test_partition_blocks_respect_destination_ranges(graph):
    part = partition_by_destination(graph, 128)
    for block in part.blocks:
        if block.num_edges:
            assert block.dst.min() >= block.dst_start
            assert block.dst.max() < block.dst_stop


def test_partition_edges_sorted_by_source_within_block(graph):
    part = partition_by_destination(graph, 256)
    for block in part.blocks:
        assert np.all(np.diff(block.src) >= 0)


def test_partition_preserves_multiset_of_edges(graph):
    part = partition_by_destination(graph, 64)
    pairs = []
    for block in part.blocks:
        pairs.extend(zip(block.src.tolist(), block.dst.tolist()))
    original = sorted(zip(graph.edge_sources().tolist(), graph.targets.tolist()))
    assert sorted(pairs) == original


def test_partition_csr_storage(graph):
    part = partition_by_destination(graph, 256, storage="csr")
    total = 0
    for block in part.blocks:
        assert block.offsets.size == graph.num_vertices + 1
        assert block.offsets[-1] == block.num_edges
        total += block.num_edges
        if block.num_edges:
            assert block.targets.min() >= block.dst_start
            assert block.targets.max() < block.dst_stop
    assert total == graph.num_edges


def test_partition_rejects_non_power_of_two(graph):
    with pytest.raises(ValueError, match="power of two"):
        partition_by_destination(graph, 100)


def test_partition_rejects_unknown_storage(graph):
    with pytest.raises(ValueError, match="storage"):
        partition_by_destination(graph, 256, storage="blocks")


def test_single_block_partition(graph):
    part = partition_by_destination(graph, 1024)
    assert part.num_blocks == 1
    assert part.blocks[0].num_edges == graph.num_edges
