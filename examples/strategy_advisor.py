#!/usr/bin/env python
"""The runtime strategy decision, end to end (paper Section VI-C).

"Fortunately, those topological parameters are easy to access and the
decision to use DPB or CB could be made dynamically at runtime."  This
example plays the role of that runtime: profile several very different
graphs with `describe` (cheap parameters + a sampled locality estimate),
take its recommendation, and then check it against the ground truth by
measuring *every* strategy.  Finally it shows the delta-PageRank frontier
telemetry that motivates the partial-activity machinery.

Run:  python examples/strategy_advisor.py
"""

import os

from repro.graphs import build_csr, load_graph, uniform_random_graph
from repro.graphs.analysis import describe
from repro.harness import run_experiment
from repro.kernels.delta import pagerank_delta
from repro.utils import format_table

# Workload multiplier — tests/test_examples.py sets REPRO_EXAMPLE_SCALE
# small so every example smoke-runs in seconds.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    candidates = {
        "urand (large, sparse)": load_graph("urand", scale=0.5 * SCALE),
        "web (crawl-ordered)": load_graph("web", scale=0.5 * SCALE),
        "small (cache-resident)": build_csr(uniform_random_graph(2048, 16, seed=3)),
        "dense random": build_csr(
            uniform_random_graph(max(2048, int(16384 * SCALE)), 44, seed=4)
        ),
    }

    rows = []
    correct = 0
    for name, graph in candidates.items():
        profile = describe(graph)
        measured = {
            method: run_experiment(graph, method).requests
            for method in ("baseline", "cb", "dpb")
        }
        best = min(measured, key=measured.get)
        recommendation = profile.recommended_method
        hit = measured[recommendation] <= 1.10 * measured[best]
        correct += hit
        rows.append(
            [
                name,
                round(profile.vertex_to_cache_ratio, 1),
                round(profile.average_degree, 1),
                round(profile.estimated_gather_hit_rate, 2),
                recommendation,
                best,
                "yes" if hit else "NO",
            ]
        )
    print(
        format_table(
            ["graph", "n/c", "degree", "est. hit rate", "advised", "best", "within 10%"],
            rows,
            title="Runtime strategy advice vs measured ground truth",
        )
    )
    print(f"\nadvice within 10% of optimal on {correct}/{len(candidates)} graphs\n")

    # Frontier telemetry: why partial activity matters late in convergence.
    urand = candidates["urand (large, sparse)"]
    result = pagerank_delta(urand, tolerance=1e-8)
    print("PageRank-Delta on urand: frontier size by round")
    marks = [0, len(result.rounds) // 2, len(result.rounds) - 1]
    for i in marks:
        r = result.rounds[i]
        share = 100 * r.frontier_size / urand.num_vertices
        print(f"  round {r.round_index:>3}: {r.frontier_size:>7} vertices "
              f"({share:5.1f}%), {r.active_edges:>8} propagations")
    print(
        f"\ntotal propagations {result.total_active_edges:,} vs "
        f"{result.num_rounds * urand.num_edges:,} for full rounds — the saved\n"
        "work is exactly what propagation blocking keeps cheap when frontiers\n"
        "shrink (Section IX)."
    )


if __name__ == "__main__":
    main()
