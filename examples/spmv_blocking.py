#!/usr/bin/env python
"""Propagation blocking beyond PageRank: generalized SpMV (paper Section IX).

The paper closes by noting the technique is really about "a sparse
all-to-all transfer": any SpMV whose output vector misses cache can bin
its products by destination range.  This example builds a weighted,
non-square sparse matrix (think: a document-term matrix scoring query
relevance), verifies both strategies produce the same product, and
measures the communication difference.

Run:  python examples/spmv_blocking.py
"""

import os

import numpy as np

from repro.kernels import SparseMatrix, spmv, spmv_trace
from repro.memsim import FullyAssociativeLRU, simulate
from repro.models import SIMULATED_MACHINE
from repro.utils import format_table

# Workload multiplier — tests/test_examples.py sets REPRO_EXAMPLE_SCALE
# small so every example smoke-runs in seconds.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    rng = np.random.default_rng(42)
    num_docs = max(5_000, int(100_000 * SCALE))
    num_terms = max(2_000, int(40_000 * SCALE))
    nnz = max(75_000, int(1_500_000 * SCALE))
    matrix = SparseMatrix.from_coo(
        num_docs,
        num_terms,
        rng.integers(0, num_docs, size=nnz),
        rng.integers(0, num_terms, size=nnz),
        rng.exponential(size=nnz).astype(np.float32),  # tf-idf-ish weights
    )
    query = rng.random(num_terms).astype(np.float32)
    print(f"matrix: {matrix} (weighted, non-square)")

    # Same product either way.
    scores_row = spmv(matrix, query, method="row")
    scores_pb = spmv(matrix, query, method="pb", bin_width=2048)
    np.testing.assert_allclose(scores_pb, scores_row, rtol=2e-3, atol=1e-4)
    top = np.argsort(scores_row)[-3:][::-1]
    print(f"top documents: {list(top)}  (identical under both methods)\n")

    # Communication: the row-major gather of x misses constantly once the
    # vectors outgrow the cache; PB streams everything.
    rows = []
    for method in ("row", "pb"):
        counters = simulate(
            spmv_trace(matrix, method=method, bin_width=2048),
            FullyAssociativeLRU(SIMULATED_MACHINE.llc),
        )
        rows.append([method, counters.total_reads, counters.total_writes,
                     counters.total_requests])
    print(
        format_table(
            ["method", "reads", "writes", "requests"],
            rows,
            title="Simulated cache-line traffic for one y = A @ x",
        )
    )
    print(
        f"\npropagation blocking moves {rows[0][3] / rows[1][3]:.1f}x fewer lines.\n"
        "The weights ride along with the adjacencies during binning — the\n"
        "exact extension Section IX describes."
    )


if __name__ == "__main__":
    main()
