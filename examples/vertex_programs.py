#!/usr/bin/env python
"""Vertex-centric algorithms on the GBSP model (paper Section IX).

Propagation blocking was conceived inside a BSP graph DSL, and the paper
claims it applies to "many vertex-centric programming models that operate
in the push direction".  This example runs three algorithms — PageRank,
connected components, and BFS — through the GBSP engine, and measures how
the propagation-blocked message-delivery backend compares to naive push
as the BFS frontier grows and shrinks.

Run:  python examples/vertex_programs.py
"""

import os

import numpy as np

from repro.gbsp import (
    bfs_levels,
    connected_components,
    pagerank_program,
    run_superstep,
    superstep_traffic,
)
from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import make_kernel
from repro.utils import format_table

# Workload multiplier — tests/test_examples.py sets REPRO_EXAMPLE_SCALE
# small so every example smoke-runs in seconds.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    graph = build_csr(
        uniform_random_graph(max(4_096, int(65_536 * SCALE)), 8, seed=13)
    )
    print(f"graph: {graph}\n")

    # --- PageRank as a vertex program: identical to the kernels ---
    program = pagerank_program(graph)
    values = program.initial(graph.num_vertices)
    everyone = np.ones(graph.num_vertices, dtype=bool)
    for _ in range(3):
        values, _ = run_superstep(graph, program, values, everyone, backend="pb")
    kernel_scores = make_kernel(graph, "dpb").run(3)
    drift = np.abs(values - kernel_scores).max()
    print(f"PageRank via GBSP vs DPB kernel: max |delta| = {drift:.2e}")

    # --- Connected components and BFS, both backends agree ---
    labels = connected_components(graph, backend="pb")
    print(f"connected components: {len(set(labels.tolist()))}")
    levels = bfs_levels(graph, 0, backend="pb")
    reachable = int(np.isfinite(levels).sum())
    print(f"BFS from 0: reached {reachable} vertices, "
          f"eccentricity {int(levels[np.isfinite(levels)].max())}\n")

    # --- Message-delivery traffic per BFS superstep ---
    # Reconstruct each superstep's frontier from the levels and measure
    # what each backend would move.
    rows = []
    max_level = int(levels[np.isfinite(levels)].max())
    for level in range(min(max_level, 6) + 1):
        frontier = np.isfinite(levels) & (levels == level)
        push = superstep_traffic(graph, frontier, backend="push")
        pb = superstep_traffic(graph, frontier, backend="pb")
        rows.append(
            [
                level,
                int(frontier.sum()),
                push.total_requests,
                pb.total_requests,
                round(push.total_requests / max(pb.total_requests, 1), 2),
            ]
        )
    print(
        format_table(
            ["superstep", "frontier size", "push requests", "pb requests", "push/pb"],
            rows,
            title="BFS message-delivery traffic per superstep",
        )
    )
    print(
        "\nOn the big mid-expansion frontiers the binned backend moves several\n"
        "times fewer lines; on tiny frontiers both are cheap (and PB's fixed\n"
        "bin bookkeeping shows) — the trade-off Section IX describes for\n"
        "frontier-based algorithms."
    )


if __name__ == "__main__":
    main()
