#!/usr/bin/env python
"""Web-crawl ranking and the web/webrnd experiment (locality's whole story).

The paper's most instructive pair of inputs is webbase-2001 under two
labellings: crawl order (high locality) and a random shuffle (none).  The
topology — and therefore PageRank itself — is identical; only the memory
behaviour changes.  This example reproduces that contrast and shows when
blocking is the wrong tool: on the well-labelled graph the pull baseline
is already communication-optimal, and the paper's runtime heuristic
(`select_method`) must be read together with the layout.

Run:  python examples/web_ranking_locality.py
"""

import os

from repro import load_graph, make_kernel
from repro.graphs import average_neighbor_distance, bandwidth_profile
from repro.harness import run_experiment
from repro.utils import format_table

# Workload multiplier — tests/test_examples.py sets REPRO_EXAMPLE_SCALE
# small so every example smoke-runs in seconds.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    web = load_graph("web", scale=0.5 * SCALE)
    webrnd = load_graph("webrnd", scale=0.5 * SCALE)
    print(f"web:    {web}")
    print(f"webrnd: {webrnd}  (same topology, labels shuffled)\n")

    # Quantify what the labelling did.
    rows = []
    for name, g in (("web", web), ("webrnd", webrnd)):
        profile = bandwidth_profile(g)
        rows.append(
            [
                name,
                round(profile["mean_distance"], 1),
                round(100 * profile["within_line_fraction"], 1),
                round(average_neighbor_distance(g), 1),
            ]
        )
    print(
        format_table(
            ["layout", "mean |u-v|", "% edges within a line", "neighbor gap"],
            rows,
            title="Layout locality metrics",
        )
    )

    # Now the memory consequences, per strategy.
    rows = []
    for name, g in (("web", web), ("webrnd", webrnd)):
        for method in ("baseline", "dpb"):
            m = run_experiment(g, method, graph_name=name)
            rows.append(
                [name, method, m.reads, m.writes,
                 round(m.counters.vertex_read_fraction() * 100, 1),
                 round(m.gail().requests_per_edge, 3)]
            )
    print()
    print(
        format_table(
            ["layout", "method", "reads", "writes", "vertex traffic %", "req/edge"],
            rows,
            title="One PageRank iteration",
        )
    )

    base_web = make_kernel(web, "baseline").measure()
    base_rnd = make_kernel(webrnd, "baseline").measure()
    dpb_rnd = make_kernel(webrnd, "dpb").measure()
    print(
        f"\nthe random relabelling multiplies baseline traffic by "
        f"{base_rnd.total_requests / base_web.total_requests:.1f}x; "
        f"DPB claws back {base_rnd.total_requests / dpb_rnd.total_requests:.1f}x of it.\n"
        "On the crawl-ordered layout, blocking only adds bin traffic: use the\n"
        "baseline when (and only when) your labelling is this good."
    )


if __name__ == "__main__":
    main()
