#!/usr/bin/env python
"""Explore the Section V communication models and their crossovers.

The paper's analytic models answer the planning question a practitioner
actually has: *given my graph's size and degree and my machine's cache,
which strategy will communicate least?*  This example tabulates the model
over a grid of (vertices, degree) and marks the winner, then checks two
grid points against the cache simulator.

Run:  python examples/model_explorer.py
"""

import os

from repro.graphs import build_csr, choose_block_width, num_blocks_for_width, uniform_random_graph
from repro.harness import run_experiment
from repro.models import (
    ModelParams,
    SIMULATED_MACHINE,
    paper_cb_edgelist_reads,
    paper_pb_reads,
    paper_pb_writes,
    paper_pull_reads,
    pb_beats_cb_blocks,
)
from repro.utils import format_table


def winner(n: int, k: float) -> tuple[str, dict[str, float]]:
    machine = SIMULATED_MACHINE
    p = ModelParams(n=n, k=k, b=machine.words_per_line, c=machine.cache_words)
    width = choose_block_width(n, machine.cache_words)
    r = num_blocks_for_width(n, width)
    totals = {
        "pull": paper_pull_reads(p) + p.n / p.b,
        "cb": paper_cb_edgelist_reads(p, r) + p.n / p.b,
        "dpb": paper_pb_reads(p) + paper_pb_writes(p),
    }
    return min(totals, key=totals.get), totals


def main() -> None:
    machine = SIMULATED_MACHINE
    print(f"machine: {machine.name}  (c = {machine.cache_words} words, "
          f"b = {machine.words_per_line})\n")

    rows = []
    for n in (2_048, 8_192, 32_768, 131_072, 524_288):
        for k in (4, 16, 40):
            best, totals = winner(n, k)
            rows.append(
                [n, k, round(totals["pull"] / (k * n), 3),
                 round(totals["cb"] / (k * n), 3),
                 round(totals["dpb"] / (k * n), 3), best.upper()]
            )
    print(
        format_table(
            ["vertices", "degree", "pull req/edge", "cb", "dpb", "winner"],
            rows,
            title="Section V models: predicted communication per edge",
        )
    )

    p = ModelParams(n=131_072, k=16, b=machine.words_per_line, c=machine.cache_words)
    print(f"\ncrossover rule: DPB beats CB once r >= 2k+2 = {pb_beats_cb_blocks(p):.0f} "
          "blocks — i.e. for graphs sparse and large relative to the cache.\n")

    # Validate two grid points against the simulator.
    print("validating against the cache simulator:")
    scale = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))
    sizes = (max(2_048, int(8_192 * scale)), max(4_096, int(131_072 * scale)))
    for n, k in ((sizes[0], 16), (sizes[1], 16)):
        graph = build_csr(uniform_random_graph(n, k, seed=1))
        measured = {
            m: run_experiment(graph, m).gail().requests_per_edge
            for m in ("baseline", "cb", "dpb")
        }
        best_measured = min(measured, key=measured.get)
        best_model, _ = winner(n, k)
        agree = "agrees" if best_measured.replace("baseline", "pull") == best_model else "DIFFERS"
        print(f"  n={n:>7} k={k}: model says {best_model.upper():4s}, "
              f"simulator says {best_measured:8s} -> {agree}")


if __name__ == "__main__":
    main()
