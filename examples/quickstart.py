#!/usr/bin/env python
"""Quickstart: compute PageRank and see why the method choice matters.

Loads a scaled version of the paper's uniform random graph, runs PageRank
with the automatically selected strategy, and then measures the simulated
DRAM traffic of every strategy on the same graph — the experiment at the
heart of the paper, in five lines of API.

Run:  python examples/quickstart.py
"""

import os

from repro import load_graph, make_kernel, pagerank, select_method
from repro.utils import format_table

# Workload multiplier — tests/test_examples.py sets REPRO_EXAMPLE_SCALE
# small so every example smoke-runs in seconds.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    # A scaled stand-in for the paper's 134 M-vertex uniform random graph
    # (scale=0.25 keeps this example under a minute on a laptop).
    graph = load_graph("urand", scale=0.25 * SCALE)
    print(f"graph: {graph}")

    # 1. Just compute PageRank.  "auto" applies the paper's runtime
    #    heuristic: pull if the vertex values fit in cache, otherwise
    #    DPB or CB depending on degree (Section VI-C).
    result = pagerank(graph, tolerance=1e-6)
    print(f"auto-selected method: {result.method} "
          f"(heuristic said {select_method(graph)!r})")
    print(f"converged in {result.iterations} iterations; "
          f"top score {result.scores.max():.3e}\n")

    # 2. Why that method: simulate one iteration's memory traffic under
    #    each strategy, exactly what the paper measures with hardware
    #    counters.
    rows = []
    for method in ("baseline", "cb", "pb", "dpb"):
        kernel = make_kernel(graph, method)
        counters = kernel.measure()
        rows.append(
            [
                method,
                counters.total_reads,
                counters.total_writes,
                round(counters.requests_per_edge(graph.num_edges), 3),
            ]
        )
    print(
        format_table(
            ["method", "DRAM reads", "DRAM writes", "requests/edge"],
            rows,
            title="Simulated memory traffic, one PageRank iteration",
        )
    )
    base, dpb = rows[0], rows[3]
    reduction = (base[1] + base[2]) / (dpb[1] + dpb[2])
    print(f"\npropagation blocking (DPB) moves {reduction:.1f}x fewer cache lines "
          "than the pull baseline on this low-locality graph.")


if __name__ == "__main__":
    main()
