#!/usr/bin/env python
"""Ranking influencers in a social network — the paper's motivating workload.

Social graphs are the "stubborn" inputs the paper opens with: low diameter,
heavy-tailed degrees, and no labelling that gives PageRank spatial
locality.  This example builds a Twitter-like follow graph, ranks accounts,
and shows (a) that every strategy agrees on the ranking and (b) how the
strategies differ in communication and modelled time — including what
happens if you try to fix the problem by relabelling instead of blocking.

Run:  python examples/social_network_ranking.py
"""

import os

import numpy as np

from repro import make_kernel, pagerank
from repro.graphs import build_csr, degree_sort_permutation, social_network_graph
from repro.harness import run_experiment
from repro.utils import format_table

# Workload multiplier — tests/test_examples.py sets REPRO_EXAMPLE_SCALE
# small so every example smoke-runs in seconds.
SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1.0"))


def main() -> None:
    # ~60 k accounts, 24 follows each on average, celebrity-skewed.
    graph = build_csr(
        social_network_graph(max(4_000, int(60_000 * SCALE)), 24.0, seed=7)
    )
    print(f"follow graph: {graph}")

    # Rank with the baseline and with DPB: identical output.
    ranks_pull = pagerank(graph, method="pull", tolerance=1e-8)
    ranks_dpb = pagerank(graph, method="dpb", tolerance=1e-8)
    top_pull = np.argsort(ranks_pull.scores)[-5:][::-1]
    top_dpb = np.argsort(ranks_dpb.scores)[-5:][::-1]
    assert list(top_pull) == list(top_dpb), "strategies must agree"
    print("\ntop influencers (vertex id, score):")
    for v in top_pull:
        in_deg = int(np.sum(graph.targets == v))
        print(f"  {v:>7d}  score={ranks_pull.scores[v]:.3e}  followers={in_deg}")

    # Compare strategies, plus the relabelling alternative.
    rows = []
    for label, g, method in [
        ("pull baseline", graph, "baseline"),
        ("pull + degree relabel", graph.permuted(degree_sort_permutation(graph)), "baseline"),
        ("cache blocking", graph, "cb"),
        ("propagation blocking (DPB)", graph, "dpb"),
    ]:
        m = run_experiment(g, method)
        rows.append(
            [label, m.reads, m.writes, round(m.gail().requests_per_edge, 3),
             round(m.seconds * 1e3, 3)]
        )
    print()
    print(
        format_table(
            ["strategy", "reads", "writes", "req/edge", "model time (ms)"],
            rows,
            title="One iteration on the follow graph",
        )
    )
    print(
        "\nDegree relabelling helps a skewed graph a little (hubs pack into\n"
        "a few hot lines), but only blocking changes the asymptotics: DPB's\n"
        "traffic is proportional to edges, not to vertex-array cache misses."
    )


if __name__ == "__main__":
    main()
