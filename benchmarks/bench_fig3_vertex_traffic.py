"""Figure 3 — vertex-value traffic share of the baseline's memory reads.

Shapes to reproduce: every graph except web spends far more than the
balanced 50% of its reads on vertex values (paper: 84.8-93.3%); web's
optimized labelling drops it toward 50% (paper: 49.0%); the uniform-random
model's prediction tracks the measurement on the synthetic graphs.
"""

from benchmarks.emit_bench import emit_bench, figure_metrics


def test_fig3_vertex_traffic(benchmark, paper_plan, report):
    fig = benchmark.pedantic(
        lambda: paper_plan.artifact("fig3"), rounds=1, iterations=1
    )
    report("fig3_vertex_traffic", fig.render())
    emit_bench(
        "fig3_vertex_traffic",
        figure_metrics(fig),
        meta={"source": "bench_fig3_vertex_traffic", "units": "percent of reads"},
    )

    measured = dict(zip(fig.x_values, fig.series["measured %"]))
    predicted = dict(zip(fig.x_values, fig.series["predicted %"]))
    for name, value in measured.items():
        if name == "web":
            assert value < 72, "web's layout must recover most locality"
        else:
            assert value > 75, name
    # webrnd destroys web's labelling (same topology).
    assert measured["webrnd"] > measured["web"] + 15
    # kron's power law improves temporal locality over same-sized urand.
    assert measured["kron"] < measured["urand"]
    # The model nails the truly uniform random graph.
    assert abs(measured["urand"] - predicted["urand"]) < 3
