"""Ablation — cache-model sensitivity of the headline result.

DESIGN.md's substitution argument rests on the LLC model: this bench
re-measures baseline vs DPB on urand under three replacement models
(fully-associative LRU, 16-way set-associative LRU, direct-mapped) and
shows the communication-reduction conclusion is insensitive to the choice.
"""

import pytest

from repro.kernels import make_kernel
from repro.memsim import CacheConfig, SetAssociativeLRU, simulate
from repro.models import SIMULATED_MACHINE
from repro.utils import format_table


def measure(graph, method, engine_name):
    kernel = make_kernel(graph, method)
    config16 = CacheConfig(
        SIMULATED_MACHINE.llc.capacity_bytes,
        SIMULATED_MACHINE.llc.line_bytes,
        ways=16,
    )
    if engine_name == "set16":
        return simulate(kernel.trace(1), SetAssociativeLRU(config16))
    if engine_name == "plru16":
        from repro.memsim import TreePLRUCache

        return simulate(kernel.trace(1), TreePLRUCache(config16))
    return kernel.measure(1, engine=engine_name)


@pytest.mark.parametrize("engine_name", ["flru", "set16", "plru16", "dmap"])
def test_ablation_engine(benchmark, urand_graph, report, engine_name):
    def run_pair():
        base = measure(urand_graph, "baseline", engine_name)
        dpb = measure(urand_graph, "dpb", engine_name)
        return base, dpb

    base, dpb = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    reduction = base.total_requests / dpb.total_requests
    report(
        f"ablation_engine_{engine_name}",
        format_table(
            ["engine", "baseline req", "dpb req", "reduction"],
            [[engine_name, base.total_requests, dpb.total_requests, round(reduction, 2)]],
            title="Ablation: DPB communication reduction under different LLC models",
        ),
    )
    # The headline reduction holds under every replacement model.
    assert reduction > 1.8
