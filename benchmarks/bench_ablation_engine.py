"""Ablation — cache-model sensitivity of the headline result, plus the
engine speed bench.

DESIGN.md's substitution argument rests on the LLC model: this bench
re-measures baseline vs DPB on urand under the replacement models
(fully-associative LRU — both the per-access oracle and the vectorized
stack-distance engine — 16-way set-associative LRU, direct-mapped) and
shows the communication-reduction conclusion is insensitive to the choice.

``test_engine_speed`` times the exact engines head to head on a
gather-heavy irregular workload (the regime the vectorized engine exists
for: uniform gathers over an address space far larger than the LLC) and
emits ``BENCH_engine_speed.json`` with accesses/sec per engine.  Set
``REPRO_ENGINE_BENCH_ACCESSES`` to shrink the workload on slow machines.
"""

import os
from time import perf_counter

import numpy as np
import pytest

from repro.kernels import make_kernel
from repro.memsim import (
    CacheConfig,
    SetAssociativeLRU,
    Stream,
    irregular_chunk,
    make_engine,
    simulate,
)
from repro.models import SIMULATED_MACHINE
from repro.utils import format_table

from benchmarks.emit_bench import emit_bench


def measure(graph, method, engine_name):
    kernel = make_kernel(graph, method)
    config16 = CacheConfig(
        SIMULATED_MACHINE.llc.capacity_bytes,
        SIMULATED_MACHINE.llc.line_bytes,
        ways=16,
    )
    if engine_name == "set16":
        return simulate(kernel.trace(1), SetAssociativeLRU(config16))
    if engine_name == "plru16":
        from repro.memsim import TreePLRUCache

        return simulate(kernel.trace(1), TreePLRUCache(config16))
    return kernel.measure(1, engine=engine_name)


@pytest.mark.parametrize(
    "engine_name", ["flru", "stackdist", "set16", "plru16", "dmap"]
)
def test_ablation_engine(benchmark, urand_graph, report, engine_name):
    def run_pair():
        base = measure(urand_graph, "baseline", engine_name)
        dpb = measure(urand_graph, "dpb", engine_name)
        return base, dpb

    base, dpb = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    reduction = base.total_requests / dpb.total_requests
    report(
        f"ablation_engine_{engine_name}",
        format_table(
            ["engine", "baseline req", "dpb req", "reduction"],
            [[engine_name, base.total_requests, dpb.total_requests, round(reduction, 2)]],
            title="Ablation: DPB communication reduction under different LLC models",
        ),
    )
    # The headline reduction holds under every replacement model.
    assert reduction > 1.8


def test_engine_speed(report):
    """Exact engines head to head on a gather-heavy workload.

    Uniform gathers over 2^22 lines against a 256-line cache: nearly every
    access misses and the oracle's dict churns far beyond any hardware
    cache, which is exactly where per-access Python costs the most and the
    vectorized engine's batched sort pays off.  Counters must stay
    bit-identical while wall-clock drops >= 10x.
    """
    num_accesses = int(os.environ.get("REPRO_ENGINE_BENCH_ACCESSES", str(1 << 24)))
    space_lines = 1 << 22
    capacity_lines = 256
    config = CacheConfig(capacity_bytes=64 * capacity_lines, line_bytes=64)
    rng = np.random.default_rng(1234)
    lines = rng.integers(0, space_lines, size=num_accesses)

    timings: dict[str, float] = {}
    counter_dicts: dict[str, dict] = {}
    for name in ("flru", "stackdist", "dmap"):
        trace = [irregular_chunk(lines, stream=Stream.VERTEX_CONTRIB)]
        engine = make_engine(name, config)
        start = perf_counter()
        counters = simulate(trace, engine)
        timings[name] = perf_counter() - start
        counter_dicts[name] = counters.as_dict()

    # Zero counter drift between the oracle and the vectorized exact engine
    # (dmap is approximate and exempt).
    assert counter_dicts["stackdist"] == counter_dicts["flru"]
    speedup = timings["flru"] / timings["stackdist"]

    rows = [
        [name, round(seconds, 3), round(num_accesses / seconds / 1e6, 1)]
        for name, seconds in timings.items()
    ]
    report(
        "engine_speed",
        format_table(
            ["engine", "seconds", "Macc/s"],
            rows,
            title=f"Exact-engine speed, {num_accesses} gather accesses "
            f"(space {space_lines} lines, cache {capacity_lines} lines); "
            f"stackdist speedup over flru: {speedup:.1f}x",
        ),
    )
    emit_bench(
        "engine_speed",
        {
            **{
                f"{name}/accesses_per_sec": num_accesses / seconds
                for name, seconds in timings.items()
            },
            "stackdist/speedup_over_flru": speedup,
        },
        meta={
            "source": "bench_ablation_engine",
            "accesses": num_accesses,
            "space_lines": space_lines,
            "capacity_lines": capacity_lines,
            "units": "accesses per second; speedup is flru_s / stackdist_s",
        },
    )
    assert speedup >= 10.0
