"""Ablation — every blocking strategy, one table (paper Sections V + VIII).

Compares the unblocked baseline, 1-D cache blocking (the paper's CB), 2-D
cache blocking (which the paper argued — and this bench verifies — buys
nothing over 1-D), CSR segmenting (Zhang et al.'s related-work
alternative), and propagation blocking (PB/DPB) on the full-scale urand
graph.
"""

from repro.kernels import make_kernel
from repro.kernels.blocking_variants import (
    CacheBlocked2DPageRank,
    CSRSegmentingPageRank,
)
from repro.models import SIMULATED_MACHINE
from repro.utils import format_table


def test_blocking_variants(benchmark, urand_graph, report):
    def run_all():
        rows = {}
        for name, kernel in (
            ("baseline", make_kernel(urand_graph, "baseline")),
            ("cb-1d", make_kernel(urand_graph, "cb")),
            ("cb-2d", CacheBlocked2DPageRank(urand_graph, SIMULATED_MACHINE)),
            ("csr-seg", CSRSegmentingPageRank(urand_graph, SIMULATED_MACHINE)),
            ("pb", make_kernel(urand_graph, "pb")),
            ("dpb", make_kernel(urand_graph, "dpb")),
        ):
            counters = kernel.measure(1)
            rows[name] = counters
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    m = urand_graph.num_edges
    report(
        "ablation_blocking_variants",
        format_table(
            ["strategy", "reads", "writes", "requests/edge"],
            [
                [name, c.total_reads, c.total_writes, round(c.total_requests / m, 3)]
                for name, c in rows.items()
            ],
            title="All blocking strategies on urand (full scale)",
        ),
    )
    req = {name: c.total_requests for name, c in rows.items()}
    # The paper's 2-D claim: within a few percent of 1-D.
    assert abs(req["cb-2d"] - req["cb-1d"]) / req["cb-1d"] < 0.1
    # Every blocking scheme beats the baseline here (n/c = 32).
    for name in ("cb-1d", "cb-2d", "csr-seg", "pb", "dpb"):
        assert req[name] < req["baseline"], name
    # And propagation blocking beats all graph-blocking schemes at this
    # size/sparsity — the headline.
    for name in ("cb-1d", "cb-2d", "csr-seg"):
        assert req["dpb"] < req[name], name
