"""Serve-layer benchmark — query latency and throughput vs batch size.

Drives the asyncio PPR query server (:mod:`repro.serve`) with a seeded
load-generator workload at several coalescing batch sizes and records the
latency distribution (p50/p99) and throughput of each.  Batch size is the
serving analogue of a propagation-blocking bin width: larger batches
amortize the per-solve graph-wide work across more concurrent queries at
the cost of per-query queueing delay, so the sweep exposes the same
locality-vs-latency trade the paper's bin-width sweep does.

A second phase replays the identical workload against a warm
content-addressed cache: every answer must come from disk without a
kernel run, so the warm hit rate is deterministically 1.0 — the one
gated metric in the emitted ``BENCH_serve_latency.json`` (latencies and
throughput are host timing and stay ungated under the sentinel's
``wall_seconds/*`` / ``*_per_sec*`` patterns).
"""

import numpy as np

from repro.graphs import build_csr, uniform_random_graph
from repro.serve import (
    BatchPolicy,
    ServeCache,
    ServeConfig,
    generate_queries,
    run_load,
)

from benchmarks.conftest import SUITE_SEED
from benchmarks.emit_bench import emit_bench

#: Coalescing limits swept by the bench (1 = no coalescing, the serial
#: baseline every larger batch is compared against).
BATCH_SIZES = [1, 4, 16]

NUM_VERTICES = 2048
DEGREE = 8
NUM_QUERIES = 64
CONCURRENCY = 8

#: Generous sanity ceiling: tail latency of a 2048-vertex PPR solve must
#: stay far below this on any host.  A failure means the serve loop is
#: wedged, not that the host is slow.
P99_CEILING_SECONDS = 30.0


def _config(max_batch: int) -> ServeConfig:
    return ServeConfig(
        policy=BatchPolicy(window_seconds=0.002, max_batch=max_batch)
    )


def test_serve_latency(tmp_path, report):
    graph = build_csr(
        uniform_random_graph(NUM_VERTICES, DEGREE, seed=SUITE_SEED)
    )
    queries = generate_queries(
        NUM_QUERIES, graph.num_vertices, seed=SUITE_SEED, repeat_fraction=0.5
    )

    metrics: dict[str, float] = {}
    lines = []
    for max_batch in BATCH_SIZES:
        load = run_load(
            graph, queries, config=_config(max_batch), concurrency=CONCURRENCY
        )
        metrics[f"wall_seconds/p50/batch{max_batch}"] = load.p50_seconds
        metrics[f"wall_seconds/p99/batch{max_batch}"] = load.p99_seconds
        metrics[f"queries_per_sec/batch{max_batch}"] = load.queries_per_sec
        lines.append(
            f"max_batch {max_batch:3d}:  p50 {load.p50_seconds * 1e3:8.2f} ms"
            f"   p99 {load.p99_seconds * 1e3:8.2f} ms"
            f"   {load.queries_per_sec:8.1f} q/s"
            f"   occupancy {load.mean_occupancy:.2f}"
        )
        assert load.num_queries == NUM_QUERIES
        assert load.p99_seconds < P99_CEILING_SECONDS
        assert load.p50_seconds <= load.p99_seconds <= load.max_seconds

    # Warm phase: populate the cache with one full pass, then replay the
    # identical workload — every query must be served from the cache.
    cache = ServeCache(str(tmp_path / "serve-cache"))
    run_load(graph, queries, config=_config(8), cache=cache, concurrency=CONCURRENCY)
    warm = run_load(
        graph, queries, config=_config(8), cache=cache, concurrency=CONCURRENCY
    )
    assert warm.cache_hit_rate == 1.0
    assert warm.batches == 0  # no kernel ran at all
    metrics["cache_hit_rate/warm"] = warm.cache_hit_rate
    metrics["queries_per_sec/warm_cache"] = warm.queries_per_sec
    lines.append(
        f"warm cache:     hit rate {warm.cache_hit_rate:.2f}"
        f"   {warm.queries_per_sec:8.1f} q/s"
    )

    report(
        "serve_latency",
        "serve latency vs batch size "
        f"({NUM_QUERIES} queries, concurrency {CONCURRENCY}, "
        f"urand n={NUM_VERTICES} d={DEGREE})\n" + "\n".join(lines),
    )
    emit_bench(
        "serve_latency",
        metrics,
        meta={
            "source": "bench_serve_latency",
            "num_vertices": NUM_VERTICES,
            "degree": DEGREE,
            "num_queries": NUM_QUERIES,
            "concurrency": CONCURRENCY,
            "batch_sizes": BATCH_SIZES,
            "units": "seconds / queries per second / hit rate",
        },
    )
