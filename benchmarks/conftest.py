"""Shared infrastructure for the benchmark suite.

Every bench regenerates one of the paper's tables or figures at full
(scaled) suite size, prints the rendered result, and writes it to
``results/<bench>.txt`` so ``pytest benchmarks/ --benchmark-only`` leaves a
complete paper-artifact dump behind.

Graphs are generated once per session and shared across bench modules; the
suite seed is fixed so every run regenerates identical inputs.
"""

from __future__ import annotations

import os

import pytest

from repro.graphs import load_graph, load_suite

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
SUITE_SEED = 42

#: Sweep parallelism for the fig7/8/9-10 benches and the shared suite
#: measurements: set ``REPRO_BENCH_WORKERS=4`` (or ``0`` for one worker
#: per CPU) to fan independent simulation cells across processes via
#: :func:`repro.parallel.sweep.run_cells`.  Outputs are identical to the
#: serial default; only wall-clock changes.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def suite_graphs():
    """The full scaled 8-graph suite (Table I)."""
    return load_suite(seed=SUITE_SEED)


@pytest.fixture(scope="session")
def half_suite_graphs():
    """Half-scale suite for the width sweeps (Figures 9-10)."""
    return load_suite(seed=SUITE_SEED, scale=0.5)


@pytest.fixture(scope="session")
def urand_graph():
    return load_graph("urand", seed=SUITE_SEED)


@pytest.fixture(scope="session")
def suite_data(suite_graphs):
    """All (graph x strategy) measurements, shared by Figures 4-6."""
    from repro.harness import suite_measurements

    return suite_measurements(suite_graphs, workers=BENCH_WORKERS)


#: Slice widths in vertices for the Figure 9-11 sweeps: 128 B ... 1 MiB
#: slices on the scaled machine (the paper sweeps 16 KB ... 64 MB against
#: its 1024x larger LLC).
BIN_WIDTHS = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144]


@pytest.fixture(scope="session")
def binwidth_sweep_data(half_suite_graphs):
    """The shared Figure 9/10 bin-width sweep (run once per session)."""
    from repro.harness import bin_width_sweep

    return bin_width_sweep(half_suite_graphs, BIN_WIDTHS, workers=BENCH_WORKERS)


@pytest.fixture(scope="session")
def report():
    """Writer that prints a rendered artifact and saves it under results/."""

    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[saved to results/{name}.txt]")

    return _write
