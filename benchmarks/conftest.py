"""Shared infrastructure for the benchmark suite.

Every bench regenerates one of the paper's tables or figures at full
(scaled) suite size, prints the rendered result, and writes it to
``results/<bench>.txt`` so ``pytest benchmarks/ --benchmark-only`` leaves a
complete paper-artifact dump behind.

Graphs are generated once per session and shared across bench modules; the
suite seed is fixed so every run regenerates identical inputs.  Since the
plan layer, the artifacts that share measurements are compiled into two
session-scoped plans executed exactly once each: ``paper_plan`` (tables
I-III plus figures 3-6, all over the same suite cells) and
``binwidth_plan`` (the figure 9/10 sweep).  Each bench just asks its plan
for its artifact.
"""

from __future__ import annotations

import os

import pytest

from repro.graphs import load_graph, load_suite

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
SUITE_SEED = 42

#: Sweep parallelism for the session plans and the fig7/8 sweeps: set
#: ``REPRO_BENCH_WORKERS=4`` (or ``0`` for one worker per CPU) to fan
#: independent simulation cells across processes via
#: :func:`repro.parallel.sweep.run_cells`.  Outputs are identical to the
#: serial default; only wall-clock changes.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


@pytest.fixture(scope="session")
def suite_graphs():
    """The full scaled 8-graph suite (Table I)."""
    return load_suite(seed=SUITE_SEED)


@pytest.fixture(scope="session")
def half_suite_graphs():
    """Half-scale suite for the width sweeps (Figures 9-10)."""
    return load_suite(seed=SUITE_SEED, scale=0.5)


@pytest.fixture(scope="session")
def urand_graph():
    return load_graph("urand", seed=SUITE_SEED)


@pytest.fixture(scope="session")
def paper_plan(suite_graphs):
    """Tables I-III and figures 3-6 as one deduplicated, executed plan.

    Every (graph, method) suite cell is simulated exactly once per bench
    session no matter how many artifacts request it.
    """
    from repro.harness import (
        figure3_spec,
        figure4_spec,
        figure5_spec,
        figure6_spec,
        table1_spec,
        table2_spec,
        table3_spec,
    )
    from repro.plan import compile_plan, execute_plan

    plan = compile_plan(
        [
            table1_spec(suite_graphs),
            table2_spec(suite_graphs["urand"]),
            table3_spec(suite_graphs),
            figure3_spec(suite_graphs),
            figure4_spec(suite_graphs),
            figure5_spec(suite_graphs),
            figure6_spec(suite_graphs),
        ]
    )
    return execute_plan(plan, workers=BENCH_WORKERS, label="bench_suite")


#: Slice widths in vertices for the Figure 9-11 sweeps: 128 B ... 1 MiB
#: slices on the scaled machine (the paper sweeps 16 KB ... 64 MB against
#: its 1024x larger LLC).
BIN_WIDTHS = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144]


@pytest.fixture(scope="session")
def binwidth_plan(half_suite_graphs):
    """Figures 9 and 10 as one plan: the shared sweep runs once."""
    from repro.harness import figure9_spec, figure10_spec
    from repro.plan import compile_plan, execute_plan

    plan = compile_plan(
        [
            figure9_spec(half_suite_graphs, BIN_WIDTHS),
            figure10_spec(half_suite_graphs, BIN_WIDTHS),
        ]
    )
    return execute_plan(plan, workers=BENCH_WORKERS, label="bench_binwidth")


@pytest.fixture(scope="session")
def report():
    """Writer that prints a rendered artifact and saves it under results/."""

    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _write(name: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print(f"\n{text}\n[saved to results/{name}.txt]")

    return _write
