"""Figure 5 — communication-volume reduction of CB/PB/DPB over baseline.

Shapes to reproduce: 1.5-2.9x reductions (average 2.3x in the paper; the
cleaner simulated counters land somewhat higher) on the seven low-locality
graphs; no reduction on web; reductions exceed the Figure 4 speedups
because the baseline uses more of the available bandwidth.
"""

from repro.graphs import LOW_LOCALITY_NAMES

from benchmarks.emit_bench import emit_bench, figure_metrics


def test_fig5_comm_reduction(benchmark, paper_plan, report):
    fig = benchmark.pedantic(
        lambda: paper_plan.artifact("fig5"),
        rounds=1,
        iterations=1,
    )
    report("fig5_comm_reduction", fig.render())
    emit_bench(
        "fig5_comm_reduction",
        figure_metrics(fig),
        meta={"source": "bench_fig5_comm_reduction", "units": "traffic reduction over baseline"},
    )

    idx = {name: i for i, name in enumerate(fig.x_values)}
    dpb = fig.series["DPB"]
    low = [dpb[idx[name]] for name in LOW_LOCALITY_NAMES]
    assert all(r > 1.5 for r in low)
    assert sum(low) / len(low) > 2.0
    assert fig.series["DPB"][idx["web"]] < 1.05  # no reduction on web

    # Reductions in communication exceed reductions in execution time.
    fig4 = paper_plan.artifact("fig4")
    for name in LOW_LOCALITY_NAMES:
        assert dpb[idx[name]] > fig4.series["DPB"][idx[name]], name
