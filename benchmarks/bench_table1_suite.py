"""Table I — the evaluation graph suite.

Regenerates the suite at scale and prints our (n, m, degree, symmetry)
next to the paper's, asserting the degree targets hold after scaling.
"""

from repro.graphs import SUITE


def test_table1_suite(benchmark, paper_plan, report):
    result = benchmark.pedantic(
        lambda: paper_plan.artifact("table1"), rounds=1, iterations=1
    )
    report("table1_suite", result.render())
    # Degrees land near the paper's targets for every graph.
    for row in result.rows:
        name, degree, paper_degree = row[0], row[4], row[8]
        assert 0.6 * paper_degree <= degree <= 1.5 * paper_degree, name
    # web/webrnd share topology by construction.
    by_name = {row[0]: row for row in result.rows}
    assert by_name["web"][3] == by_name["webrnd"][3]
    assert set(by_name) == set(SUITE)
