"""Figure 9 — impact of bin width on PB's communication volume.

Shapes to reproduce: once bins are small enough that a bin's sums slice
fits in cache, communication stops improving (flat left plateau); widths
beyond the cache blow up traffic (the sums scatters start missing); web is
insensitive because its layout already provides the locality.
"""

from benchmarks.emit_bench import emit_bench, figure_metrics


def test_fig9_binwidth_comm(benchmark, binwidth_plan, report):
    fig = benchmark.pedantic(
        lambda: binwidth_plan.artifact("fig9"),
        rounds=1,
        iterations=1,
    )
    report("fig9_binwidth_comm", fig.render())
    emit_bench(
        "fig9_binwidth_comm",
        figure_metrics(fig),
        meta={
            "source": "bench_fig9_binwidth_comm",
            "units": "DRAM requests per edge",
        },
    )

    for name, series in fig.series.items():
        small = series[:6]  # slices comfortably inside the LLC
        huge = series[-1]
        if name == "web":
            # Insensitive: high locality obviates blocking.
            assert max(series) / min(series) < 1.6
        else:
            # Flat plateau once slices fit, then a clear blow-up.
            assert max(small) / min(small) < 1.25, name
            assert huge > 1.8 * min(small), name
