"""Figure 7 — communication efficiency vs number of vertices (urand, k=16).

Shapes to reproduce: three regimes as the graph grows past the cache —
the baseline is most efficient while vertex values fit, cache blocking
wins mid-range, and DPB's flat requests/edge curve wins for large graphs
(the paper's 1 M - 512 M sweep, scaled to 4 K - 512 K against the scaled
LLC; the vertex-to-cache ratios covered are the same).
"""

from repro.harness import figure7_scaling_vertices

from benchmarks.conftest import BENCH_WORKERS

SIZES = [4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288]


def test_fig7_scale_vertices(benchmark, report):
    fig = benchmark.pedantic(
        lambda: figure7_scaling_vertices(SIZES, workers=BENCH_WORKERS),
        rounds=1,
        iterations=1,
    )
    report("fig7_scale_vertices", fig.render())

    base = fig.series["Baseline"]
    cb = fig.series["CB"]
    dpb = fig.series["DPB"]
    # Small graphs: baseline unbeatable (blocking unmerited).
    assert base[0] < cb[0] and base[0] < dpb[0]
    # The baseline overflows the cache and degrades steeply.
    assert base[-1] > 4 * base[0]
    # Mid-size: CB most efficient.
    mid = SIZES.index(32768)
    assert cb[mid] < base[mid] and cb[mid] < dpb[mid]
    # CB degrades as blocks multiply with n; DPB stays flat.
    assert cb[-1] > 1.5 * cb[mid]
    assert max(dpb) / min(dpb) < 1.25
    # Largest graphs: DPB provides the most scalable communication.
    assert dpb[-1] < cb[-1] < base[-1]
