"""Figure 11 — DPB execution-time breakdown by phase on urand.

Shapes to reproduce: binning time rises as bins shrink (insertion points
overflow the L1) and accumulate time rises as bins widen (sums slices
overflow the LLC); the selected width balances time between the phases.
"""

from repro.harness import figure11_phase_breakdown
from benchmarks.conftest import BIN_WIDTHS
from benchmarks.emit_bench import emit_bench, figure_metrics


def test_fig11_phase_breakdown(benchmark, urand_graph, report):
    fig = benchmark.pedantic(
        lambda: figure11_phase_breakdown(urand_graph, BIN_WIDTHS),
        rounds=1,
        iterations=1,
    )
    report("fig11_phase_breakdown", fig.render())
    emit_bench(
        "fig11_phase_breakdown",
        figure_metrics(fig),
        meta={"source": "bench_fig11_phase_breakdown", "units": "modelled seconds"},
    )

    binning = fig.series["binning"]
    accumulate = fig.series["accumulate"]
    # Binning: worst at the smallest width, improving as bins grow.
    assert binning[0] == max(binning)
    assert binning[0] > 1.3 * min(binning)
    # Accumulate: worst at the largest width.
    assert accumulate[-1] == max(accumulate)
    assert accumulate[-1] > 1.5 * min(accumulate)
    # At the default width the two phases are within ~3x of each other
    # (the "balances time between the two phases" claim).
    idx = BIN_WIDTHS.index(2048)
    ratio = binning[idx] / accumulate[idx]
    assert 1 / 3 < ratio < 3
