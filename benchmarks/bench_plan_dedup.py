"""Plan-layer benchmark — cell deduplication and measurement-cache reuse.

Compiles the suite-family artifacts (tables II-III, figures 3-6) into one
plan and measures what the plan layer buys:

* **dedup**: the artifacts request far more cells than the plan executes
  (every (graph, method) measurement is shared), so the dedup ratio must
  be strictly greater than 1.0;
* **cache**: rerunning the same plan against a warm content-addressed
  cache executes zero cells.

Emits ``BENCH_plan_dedup.json`` with cells requested vs executed and the
cold vs warm wall times — the machine-readable record of both claims.
"""

import time

from repro.graphs import load_suite
from repro.harness import MeasurementCache
from repro.harness.figures import (
    figure3_spec,
    figure4_spec,
    figure5_spec,
    figure6_spec,
)
from repro.harness.tables import table2_spec, table3_spec
from repro.plan import compile_plan, execute_plan

from benchmarks.conftest import BENCH_WORKERS, SUITE_SEED
from benchmarks.emit_bench import emit_bench

DEDUP_SCALE = 0.25


def _specs(graphs):
    return [
        table2_spec(graphs["urand"]),
        table3_spec(graphs),
        figure3_spec(graphs),
        figure4_spec(graphs),
        figure5_spec(graphs),
        figure6_spec(graphs),
    ]


def test_plan_dedup(benchmark, tmp_path, report):
    graphs = load_suite(seed=SUITE_SEED, scale=DEDUP_SCALE)
    cache = MeasurementCache(str(tmp_path / "cache"))

    def cold_run():
        plan = compile_plan(_specs(graphs))
        start = time.perf_counter()
        execute_plan(plan, workers=BENCH_WORKERS, cache=cache, label="dedup_cold")
        return plan, time.perf_counter() - start

    cold_plan, cold_seconds = benchmark.pedantic(cold_run, rounds=1, iterations=1)

    warm_plan = compile_plan(_specs(graphs))
    start = time.perf_counter()
    execute_plan(warm_plan, workers=BENCH_WORKERS, cache=cache, label="dedup_warm")
    warm_seconds = time.perf_counter() - start

    lines = [
        f"cells requested:  {cold_plan.cells_requested}",
        f"cells unique:     {cold_plan.cells_unique}",
        f"cells executed:   {cold_plan.stats.executed} (cold) / "
        f"{warm_plan.stats.executed} (warm)",
        f"cache hits:       {cold_plan.stats.cache_hits} (cold) / "
        f"{warm_plan.stats.cache_hits} (warm)",
        f"dedup ratio:      {cold_plan.dedup_ratio:.2f}",
        f"wall time:        {cold_seconds:.3f}s (cold) / {warm_seconds:.3f}s (warm)",
    ]
    report("plan_dedup", "plan dedup + cache reuse\n" + "\n".join(lines))
    emit_bench(
        "plan_dedup",
        {
            "cells/requested": cold_plan.cells_requested,
            "cells/unique": cold_plan.cells_unique,
            "cells/executed_cold": cold_plan.stats.executed,
            "cells/executed_warm": warm_plan.stats.executed,
            "cells/cache_hits_warm": warm_plan.stats.cache_hits,
            "dedup_ratio": cold_plan.dedup_ratio,
            "wall_seconds/cold": cold_seconds,
            "wall_seconds/warm": warm_seconds,
        },
        meta={
            "source": "bench_plan_dedup",
            "scale": DEDUP_SCALE,
            "units": "cells / seconds",
        },
    )

    # Dedup: the suite artifacts share measurement cells.
    assert cold_plan.dedup_ratio > 1.0
    assert cold_plan.stats.executed == cold_plan.cells_unique
    # Warm cache: the second run executes nothing at all.
    assert warm_plan.stats.executed == 0
    assert warm_plan.stats.cache_hits == warm_plan.cells_unique
    assert warm_seconds < cold_seconds
