"""Machine-readable benchmark emission: ``BENCH_<name>.json`` files.

The text artifacts under ``results/`` are for humans; this module gives
every ``bench_fig*`` / ``bench_table*`` script a one-call way to also emit
its headline numbers as a schema-versioned JSON document at the repository
root, in the shared metrics schema (``docs/metrics_schema.md``).  Those
files are the cross-commit performance trajectory: successive runs of the
same bench produce directly comparable documents.

Shape of a bench document::

    {
      "schema_version": "1.4",
      "kind": "bench",
      "bench": "fig4_speedup",
      "metrics": {"DPB/urand": 1.74, ...},   # flat name -> finite number
      "meta": {"source": "bench_fig4_speedup",
               "provenance": {"git_commit": ..., "timestamp_utc": ...,
                              "python": ..., "numpy": ...,
                              "default_engine": ...}}
    }

Every document is stamped with provenance (git commit, UTC timestamp,
schema version, python/numpy versions, default simulation engine) so the
bench-regression sentinel (``repro-pb bench --check``) can attribute any
number on the trajectory to the tree and toolchain that produced it.
``REPRO_BENCH_DIR`` redirects emission away from the repository root —
the CI sentinel job uses it to collect fresh documents for comparison
without touching the committed baselines.

Helpers flatten the harness result types: :func:`figure_metrics` turns a
``FigureResult`` into ``{"<series>/<x>": value}`` entries and
:func:`measurement_metrics` extracts a ``Measurement``'s traffic and
modelled-time numbers under a prefix.
"""

from __future__ import annotations

import datetime
import json
import math
import numbers
import os
import subprocess

from repro.obs import SCHEMA_VERSION

__all__ = [
    "emit_bench",
    "figure_metrics",
    "measurement_metrics",
    "provenance",
    "BENCH_PREFIX",
    "BENCH_DIR_ENV",
]

#: File-name prefix of emitted bench documents.
BENCH_PREFIX = "BENCH_"

#: Environment variable overriding the emission directory (CI sentinel).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def provenance() -> dict[str, object]:
    """Attribution record stamped into every bench document.

    Best-effort by design: a missing git binary or a tarball checkout
    yields ``git_commit: None`` rather than a failed bench run.
    """
    try:
        commit = subprocess.run(
            ["git", "-C", _REPO_ROOT, "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:  # noqa: BLE001 — no git, no repo, no problem
        commit = None
    import platform

    import numpy

    from repro.memsim import DEFAULT_ENGINE

    return {
        "git_commit": commit,
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "default_engine": DEFAULT_ENGINE,
    }


def figure_metrics(fig, *, series: list[str] | None = None) -> dict[str, float]:
    """Flatten a ``FigureResult`` into ``{"<series>/<x>": value}`` metrics."""
    names = series if series is not None else sorted(fig.series)
    metrics: dict[str, float] = {}
    for name in names:
        for x, value in zip(fig.x_values, fig.series[name]):
            metrics[f"{name}/{x}"] = float(value)
    return metrics


def measurement_metrics(measurement, prefix: str) -> dict[str, float]:
    """A ``Measurement``'s headline numbers under ``prefix/``."""
    return {
        f"{prefix}/reads": float(measurement.reads),
        f"{prefix}/writes": float(measurement.writes),
        f"{prefix}/requests": float(measurement.requests),
        f"{prefix}/modelled_seconds": float(measurement.seconds),
        f"{prefix}/instructions": float(measurement.instructions),
    }


def emit_bench(
    bench: str,
    metrics: dict[str, float],
    *,
    meta: dict[str, object] | None = None,
    directory: str | None = None,
) -> str:
    """Write ``BENCH_<bench>.json`` and return its path.

    ``metrics`` must be a flat mapping of names to finite numbers — the
    comparable quantities of the bench.  ``meta`` carries free-form context
    (source script, suite scale, units notes) and is never compared; a
    ``provenance`` record (git commit, timestamp, toolchain, engine) is
    stamped into it automatically.  ``directory`` defaults to the
    ``REPRO_BENCH_DIR`` environment variable, then the repository root.
    """
    if not bench:
        raise ValueError("bench name must be non-empty")
    clean: dict[str, float] = {}
    for name, value in metrics.items():
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            raise TypeError(f"metric {name!r} is not a number: {value!r}")
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"metric {name!r} is not finite: {value!r}")
        clean[name] = value
    if not clean:
        raise ValueError("a bench document needs at least one metric")
    full_meta = dict(meta or {})
    full_meta.setdefault("provenance", provenance())
    document = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "bench": bench,
        "metrics": clean,
        "meta": full_meta,
    }
    if directory is None:
        directory = os.environ.get(BENCH_DIR_ENV) or _REPO_ROOT
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{BENCH_PREFIX}{bench}.json")
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
