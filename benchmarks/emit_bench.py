"""Machine-readable benchmark emission: ``BENCH_<name>.json`` files.

The text artifacts under ``results/`` are for humans; this module gives
every ``bench_fig*`` / ``bench_table*`` script a one-call way to also emit
its headline numbers as a schema-versioned JSON document at the repository
root, in the shared metrics schema (``docs/metrics_schema.md``).  Those
files are the cross-commit performance trajectory: successive runs of the
same bench produce directly comparable documents.

Shape of a bench document::

    {
      "schema_version": "1",
      "kind": "bench",
      "bench": "fig4_speedup",
      "metrics": {"DPB/urand": 1.74, ...},   # flat name -> finite number
      "meta": {"source": "bench_fig4_speedup"}
    }

Helpers flatten the harness result types: :func:`figure_metrics` turns a
``FigureResult`` into ``{"<series>/<x>": value}`` entries and
:func:`measurement_metrics` extracts a ``Measurement``'s traffic and
modelled-time numbers under a prefix.
"""

from __future__ import annotations

import json
import math
import numbers
import os

from repro.obs import SCHEMA_VERSION

__all__ = ["emit_bench", "figure_metrics", "measurement_metrics", "BENCH_PREFIX"]

#: File-name prefix of emitted bench documents.
BENCH_PREFIX = "BENCH_"

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def figure_metrics(fig, *, series: list[str] | None = None) -> dict[str, float]:
    """Flatten a ``FigureResult`` into ``{"<series>/<x>": value}`` metrics."""
    names = series if series is not None else sorted(fig.series)
    metrics: dict[str, float] = {}
    for name in names:
        for x, value in zip(fig.x_values, fig.series[name]):
            metrics[f"{name}/{x}"] = float(value)
    return metrics


def measurement_metrics(measurement, prefix: str) -> dict[str, float]:
    """A ``Measurement``'s headline numbers under ``prefix/``."""
    return {
        f"{prefix}/reads": float(measurement.reads),
        f"{prefix}/writes": float(measurement.writes),
        f"{prefix}/requests": float(measurement.requests),
        f"{prefix}/modelled_seconds": float(measurement.seconds),
        f"{prefix}/instructions": float(measurement.instructions),
    }


def emit_bench(
    bench: str,
    metrics: dict[str, float],
    *,
    meta: dict[str, object] | None = None,
    directory: str | None = None,
) -> str:
    """Write ``BENCH_<bench>.json`` and return its path.

    ``metrics`` must be a flat mapping of names to finite numbers — the
    comparable quantities of the bench.  ``meta`` carries free-form context
    (source script, suite scale, units notes) and is never compared.
    """
    if not bench:
        raise ValueError("bench name must be non-empty")
    clean: dict[str, float] = {}
    for name, value in metrics.items():
        if not isinstance(value, numbers.Real) or isinstance(value, bool):
            raise TypeError(f"metric {name!r} is not a number: {value!r}")
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"metric {name!r} is not finite: {value!r}")
        clean[name] = value
    if not clean:
        raise ValueError("a bench document needs at least one metric")
    document = {
        "schema_version": SCHEMA_VERSION,
        "kind": "bench",
        "bench": bench,
        "metrics": clean,
        "meta": dict(meta or {}),
    }
    path = os.path.join(directory or _REPO_ROOT, f"{BENCH_PREFIX}{bench}.json")
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
