"""Table III — detailed baseline / PB / DPB results on all eight graphs.

Shapes to reproduce (paper Table III):
* PB and DPB cut baseline reads by ~3-5x on every low-locality graph;
* PB's bin writes roughly equal its reads; DPB's destination reuse cuts
  writes by ~25-30%;
* PB/DPB execute ~4x the baseline's instructions;
* on web (high locality) blocking does not reduce communication.
"""

from repro.graphs import LOW_LOCALITY_NAMES

from benchmarks.emit_bench import emit_bench, measurement_metrics


def test_table3_detailed(benchmark, paper_plan, report):
    result = benchmark.pedantic(
        lambda: paper_plan.artifact("table3"), rounds=1, iterations=1
    )
    report("table3_detailed", result.render())
    metrics = {}
    for key, m in result.measurements.items():
        metrics.update(measurement_metrics(m, key))
    emit_bench(
        "table3_detailed",
        metrics,
        meta={"source": "bench_table3_detailed", "units": "cache lines / seconds"},
    )

    for name in LOW_LOCALITY_NAMES:
        base = result.measurements[f"{name}/baseline"]
        pb = result.measurements[f"{name}/pb"]
        dpb = result.measurements[f"{name}/dpb"]
        # Reads collapse under blocking (paper: 2269 -> 467 M on urand).
        assert pb.reads < 0.5 * base.reads, name
        # DPB writes less than PB (destination index reuse).
        assert dpb.writes < 0.85 * pb.writes, name
        # The instruction-count price of binning (~4x).
        assert 2.5 * base.instructions < pb.instructions < 7 * base.instructions, name
        # Net result: both total communication and modelled time improve.
        assert dpb.requests < base.requests, name
        assert dpb.seconds < base.seconds, name

    web_base = result.measurements["web/baseline"]
    web_dpb = result.measurements["web/dpb"]
    assert web_dpb.requests > 0.95 * web_base.requests  # no win on web
