"""Distributed-executor benchmark — what the fleet costs and buys.

The paper's discipline for propagation blocking applies to the harness
itself: binning (here, leasing cells to workers) only pays when its
overhead is amortized, so the overhead must be *measured*, never hidden.
This bench runs a sleep-dominated sweep (cells whose cost is known
exactly, so every measured delta is pure harness) four ways — serially
in-process, then on fleets of 1, 2, and 4 spawned workers — and splits
each fleet run into its three phases:

* **setup**: executor start to first granted lease — process spawn,
  TCP join, handshake;
* **steady state**: first lease granted to last lease completed — where
  scaling must show up;
* **teardown**: last completion to return — shutdown handshakes and
  process joins.

The headline number is **per-cell coordinator overhead**: the 1-worker
fleet against the serial baseline, divided by the cell count — every
microsecond of lease round-trips, cache writes, and event framing,
with zero parallelism to hide behind.

Everything here is wall clock on a shared host, so every metric lands
in the ungated ``wall_seconds/*`` namespace (``docs/metrics_schema.md``)
— the sentinel tracks the trajectory but does not gate on it.  Emits
``BENCH_distributed.json``.
"""

import time

from repro.harness.cache import MeasurementCache
from repro.obs import events as _events
from repro.parallel import SweepCell, SweepStats, run_cells
from repro.plan.executors import ExecutionRequest

from benchmarks.emit_bench import emit_bench

#: Per-cell busy time: long enough to dwarf scheduling noise, short
#: enough that 4 runs x 32 cells stay under a minute of sleep total.
CELL_SECONDS = 0.05
N_CELLS = 32
FLEETS = [1, 2, 4]


def sleep_cell(key, seconds=CELL_SECONDS):
    """A cell of exactly known cost (module-level: workers unpickle it)."""
    time.sleep(seconds)
    return key


def _cells():
    return [
        SweepCell(key=i, fn=sleep_cell, args=(i,)) for i in range(N_CELLS)
    ]


def _fleet_run(workers, tmp_path):
    from repro.cluster import DistributedExecutor

    executor = DistributedExecutor(spawn_workers=workers, lease_seconds=30.0)
    cache = MeasurementCache(str(tmp_path / f"cache{workers}"))
    stats = SweepStats()
    with _events.collecting() as bus:
        start = time.perf_counter()
        result = executor.run(
            ExecutionRequest(
                cells=_cells(),
                label=f"fleet{workers}",
                stats=stats,
                cache=cache,
            )
        )
        total = time.perf_counter() - start
    assert result == {i: i for i in range(N_CELLS)}
    assert stats.completed == N_CELLS and not stats.serial_fallback
    bus.pump()
    granted = [e.ts for e in bus.events() if e.kind == "lease_granted"]
    completed = [e.ts for e in bus.events() if e.kind == "lease_completed"]
    bus.close()
    setup = min(granted) - start
    steady = max(completed) - min(granted)
    teardown = total - (max(completed) - start)
    return {"total": total, "setup": setup, "steady": steady, "teardown": teardown}


def test_distributed(benchmark, report, tmp_path):
    def measure():
        serial_start = time.perf_counter()
        serial_result = run_cells(_cells(), workers=1, label="fleet_serial")
        serial = time.perf_counter() - serial_start
        assert serial_result == {i: i for i in range(N_CELLS)}
        return serial, {n: _fleet_run(n, tmp_path) for n in FLEETS}

    serial, fleets = benchmark.pedantic(measure, rounds=1, iterations=1)

    overhead_per_cell = (fleets[1]["total"] - serial) / N_CELLS
    ideal = {n: N_CELLS * CELL_SECONDS / n for n in FLEETS}
    efficiency = {n: ideal[n] / fleets[n]["steady"] for n in FLEETS}

    lines = [
        f"cells:             {N_CELLS} x {CELL_SECONDS * 1000:.0f}ms sleep",
        f"serial baseline:   {serial:.3f}s",
    ]
    for n in FLEETS:
        phases = fleets[n]
        lines.append(
            f"fleet of {n}:        {phases['total']:.3f}s total "
            f"(setup {phases['setup']:.3f}s, steady {phases['steady']:.3f}s, "
            f"teardown {phases['teardown']:.3f}s, "
            f"{efficiency[n] * 100:.0f}% of ideal)"
        )
    lines.append(
        f"coordinator cost:  {overhead_per_cell * 1000:.2f}ms per cell "
        f"(1-worker fleet vs serial)"
    )
    report("distributed", "distributed executor cost\n" + "\n".join(lines))

    metrics = {
        "cells": N_CELLS,
        "wall_seconds/serial": serial,
        "wall_seconds/overhead_per_cell": overhead_per_cell,
    }
    for n in FLEETS:
        phases = fleets[n]
        metrics[f"wall_seconds/fleet{n}/total"] = phases["total"]
        metrics[f"wall_seconds/fleet{n}/setup"] = phases["setup"]
        metrics[f"wall_seconds/fleet{n}/steady"] = phases["steady"]
        metrics[f"wall_seconds/fleet{n}/teardown"] = phases["teardown"]
        metrics[f"wall_seconds/fleet{n}/efficiency"] = efficiency[n]
    emit_bench(
        "distributed",
        metrics,
        meta={
            "source": "bench_distributed",
            "cell_seconds": CELL_SECONDS,
            "fleets": FLEETS,
            "units": "seconds",
        },
    )

    # Sanity bars, loose enough for a loaded 1-CPU host: the fleet must
    # finish everything and the 1-worker overhead must stay sub-second
    # in total (it is tens of milliseconds in practice).
    assert overhead_per_cell * N_CELLS < max(5.0, serial)
    for n in FLEETS:
        assert fleets[n]["setup"] < 30.0
