"""Ablation — how much LLC capacity does propagation blocking substitute for?

Sweep the simulated LLC size for the pull baseline and for DPB on urand.
The baseline's traffic falls with capacity (its gathers hit more) until
the vertex values fit entirely; DPB's is capacity-insensitive once a
slice fits.  The punchline: DPB on the small cache communicates about as
little as the baseline does on a cache an order of magnitude larger —
blocking buys capacity.
"""

from repro.kernels import make_kernel
from repro.memsim import CacheConfig, FullyAssociativeLRU, simulate
from repro.models.machine import MachineSpec, SIMULATED_MACHINE
from repro.utils import format_series

CACHE_KIB = [4, 16, 64, 256, 1024]


def machine_with_llc(kib: int) -> MachineSpec:
    return MachineSpec(
        name=f"llc-{kib}k",
        llc=CacheConfig(capacity_bytes=kib * 1024, line_bytes=64),
        l1=SIMULATED_MACHINE.l1,
        mem_bandwidth_requests=SIMULATED_MACHINE.mem_bandwidth_requests,
        instr_rate=SIMULATED_MACHINE.instr_rate,
    )


def test_ablation_cache_size(benchmark, urand_graph, report):
    def sweep():
        series = {"baseline": [], "dpb": []}
        for kib in CACHE_KIB:
            machine = machine_with_llc(kib)
            for method in ("baseline", "dpb"):
                kernel = make_kernel(urand_graph, method, machine)
                counters = simulate(kernel.trace(1), FullyAssociativeLRU(machine.llc))
                series[method].append(
                    counters.total_requests / urand_graph.num_edges
                )
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_cache_size",
        format_series(
            "LLC (KiB)",
            CACHE_KIB,
            series,
            title="Requests/edge vs LLC capacity (urand, n=131k: vertex arrays ~512 KiB)",
        ),
    )
    base = series["baseline"]
    dpb = series["dpb"]
    # The baseline needs capacity; DPB barely cares.
    assert base[0] / base[-1] > 3
    assert max(dpb) / min(dpb) < 1.5
    # DPB on the smallest cache beats the baseline on a 16x larger one.
    assert dpb[0] < base[CACHE_KIB.index(64)]
    # Once everything fits, the unblocked baseline is cheapest again.
    assert base[-1] < dpb[-1]
