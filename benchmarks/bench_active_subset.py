"""Section IX experiment — communication efficiency with partial activity.

The paper: "propagation blocking experiences no loss in communication
efficiency if only a subset of the vertices are active", unlike cache
blocking (which must stream its whole pre-blocked graph) and pull (which
must read every in-edge).  Sweep the active fraction and measure requests
per *active* edge for all three strategies.
"""

import numpy as np

from repro.kernels.partial import PARTIAL_METHODS, active_edge_count, partial_trace
from repro.memsim import FullyAssociativeLRU, simulate
from repro.models import SIMULATED_MACHINE
from repro.utils import format_series

FRACTIONS = [0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0]


def test_active_subset(benchmark, urand_graph, report):
    rng = np.random.default_rng(17)

    def sweep():
        series = {m: [] for m in PARTIAL_METHODS}
        for fraction in FRACTIONS:
            active = rng.random(urand_graph.num_vertices) < fraction
            edges = max(active_edge_count(urand_graph, active), 1)
            for method in PARTIAL_METHODS:
                counters = simulate(
                    partial_trace(urand_graph, active, method, SIMULATED_MACHINE),
                    FullyAssociativeLRU(SIMULATED_MACHINE.llc),
                )
                series[method].append(counters.total_requests / edges)
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "active_subset",
        format_series(
            "active fraction",
            FRACTIONS,
            series,
            title="Requests per ACTIVE edge vs active fraction (urand)",
        ),
    )

    pb, cb, pull = series["pb"], series["cb"], series["pull"]
    # PB's per-active-edge cost is within a small factor across the sweep;
    # pull's and CB's explode as the fraction shrinks.
    assert max(pb) / min(pb) < 8
    assert pull[0] / pull[-1] > 30
    assert cb[0] / cb[-1] > 15
    # At every partial fraction PB is the most efficient strategy.
    for i, fraction in enumerate(FRACTIONS[:-1]):
        assert pb[i] < cb[i] < pull[i], fraction
