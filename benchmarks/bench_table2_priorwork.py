"""Table II — baseline vs prior-work strategies on urand.

Shape to reproduce: the baseline executes the fewest instructions, reads
the fewest lines, and is the fastest — so improvements over it are
meaningful (paper Section VI-A: baseline > 1.5x faster than all four
established codebases).
"""

def test_table2_priorwork(benchmark, paper_plan, report):
    result = benchmark.pedantic(
        lambda: paper_plan.artifact("table2"), rounds=1, iterations=1
    )
    report("table2_priorwork", result.render())

    base = result.measurements["baseline"]
    for name in ("csb", "galois", "graphmat", "ligra"):
        other = result.measurements[name]
        assert other.reads > base.reads, name
        assert other.instructions > 2 * base.instructions, name
        # All prior strategies are slower; the margin under the simple
        # bottleneck model is smaller than the paper's measured 1.5x+
        # because the model does not couple instruction pressure to
        # achievable memory-level parallelism.
        assert other.seconds > 1.05 * base.seconds, name
    assert result.measurements["ligra"].seconds > 1.5 * base.seconds
    # Ligra is traffic-heavy but still bandwidth-bound; GraphMat is the
    # most instruction-bound (paper's instruction-window discussion).
    assert result.measurements["ligra"].reads > 1.5 * base.reads
    assert (
        result.measurements["graphmat"].instructions
        == max(m.instructions for m in result.measurements.values())
    )
