"""Figure 4 — modelled execution-time speedup of CB/PB/DPB over baseline.

Shapes to reproduce: blocking speeds up every low-locality graph (paper:
1.1-2.7x, average 1.8x for PB/DPB); web shows no speedup; DPB >= PB
(destination reuse trims writes and instructions).
"""

from repro.graphs import LOW_LOCALITY_NAMES

from benchmarks.emit_bench import emit_bench, figure_metrics


def test_fig4_speedup(benchmark, paper_plan, report):
    fig = benchmark.pedantic(
        lambda: paper_plan.artifact("fig4"),
        rounds=1,
        iterations=1,
    )
    report("fig4_speedup", fig.render())
    emit_bench(
        "fig4_speedup",
        figure_metrics(fig),
        meta={"source": "bench_fig4_speedup", "units": "speedup over baseline"},
    )

    idx = {name: i for i, name in enumerate(fig.x_values)}
    dpb = fig.series["DPB"]
    pb = fig.series["PB"]
    low = [dpb[idx[name]] for name in LOW_LOCALITY_NAMES]
    assert all(s > 1.05 for s in low), "DPB must speed up all low-locality graphs"
    assert sum(low) / len(low) > 1.3, "average DPB speedup well above 1"
    # Paper max is 2.7x; the clean bottleneck model (no TLB/prefetch waste
    # inflating the baseline) tops out a bit lower.
    assert max(low) > 1.5
    # web: no speedup from blocking.
    assert fig.series["DPB"][idx["web"]] < 1.1
    # DPB at least matches PB nearly everywhere.
    assert sum(d >= p * 0.98 for d, p in zip(dpb, pb)) >= 6
