"""Figure 8 — communication efficiency vs directed degree (urand, fixed n).

Shapes to reproduce: CB's requests/edge falls as density rises (more work
amortizes each block's compulsory vertex reloads) while DPB's stays nearly
flat, so DPB wins for sparse graphs and CB takes over past a degree
crossover (paper: k ~ 36 at 128 M vertices; the crossover scales with the
vertex-to-cache ratio).
"""

from repro.harness import figure8_scaling_degree

from benchmarks.conftest import BENCH_WORKERS

DEGREES = [4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48]
NUM_VERTICES = 65536  # n/c = 16 against the scaled LLC


def test_fig8_scale_degree(benchmark, report):
    fig = benchmark.pedantic(
        lambda: figure8_scaling_degree(
            DEGREES, num_vertices=NUM_VERTICES, workers=BENCH_WORKERS
        ),
        rounds=1,
        iterations=1,
    )
    report("fig8_scale_degree", fig.render())

    cb = fig.series["CB"]
    dpb = fig.series["DPB"]
    base = fig.series["Baseline"]
    # CB improves with density much faster than DPB moves at all.
    assert cb[0] / cb[-1] > 2.0
    assert dpb[0] / dpb[-1] < 1.7
    # Sparse end: DPB clearly ahead of CB.
    assert dpb[0] < 0.8 * cb[0]
    # A crossover exists inside the sweep: CB ends up ahead.
    assert cb[-1] < dpb[-1]
    crossover = next(k for k, c, d in zip(DEGREES, cb, dpb) if c < d)
    assert 8 <= crossover <= 48
    # The unblocked baseline is never competitive at this size.
    assert all(b > d for b, d in zip(base, dpb))
