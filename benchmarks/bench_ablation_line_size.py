"""Ablation — the Section V line-size crossover, measured.

The paper's first crossover condition says propagation blocking beats pull
when ``b >= 3 / (1 - c/n)``: blocking pays for three streaming passes over
the propagations, which only wins if the baseline wastes most of each
transferred line.  Sweep the cache-line size (with everything else fixed)
and watch the winner flip exactly where the model says: with tiny lines
the baseline's gathers waste nothing and pull wins; with realistic 64 B
lines blocking wins decisively.

Traffic is compared in *bytes* (requests x line size), the fair unit
across line sizes.
"""

from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import make_kernel
from repro.memsim import CacheConfig, FullyAssociativeLRU, simulate
from repro.models import ModelParams, SIMULATED_MACHINE, pb_beats_pull_line_size
from repro.models.machine import MachineSpec
from repro.utils import format_series

LINE_BYTES = [8, 16, 32, 64, 128, 256]
NUM_VERTICES = 8192  # c/n = 1/2 against the 16 KiB LLC -> threshold b = 6 words
DEGREE = 16.0


def machine_with_line(line_bytes: int) -> MachineSpec:
    return MachineSpec(
        name=f"line-{line_bytes}",
        llc=CacheConfig(capacity_bytes=16 * 1024, line_bytes=line_bytes),
        l1=CacheConfig(capacity_bytes=2 * 1024, line_bytes=line_bytes),
        mem_bandwidth_requests=SIMULATED_MACHINE.mem_bandwidth_requests,
        instr_rate=SIMULATED_MACHINE.instr_rate,
    )


def test_line_size_crossover(benchmark, report):
    graph = build_csr(uniform_random_graph(NUM_VERTICES, DEGREE, seed=19))

    def sweep():
        series = {"baseline": [], "dpb": []}
        for line_bytes in LINE_BYTES:
            machine = machine_with_line(line_bytes)
            for method in ("baseline", "dpb"):
                kernel = make_kernel(graph, method, machine)
                counters = simulate(kernel.trace(1), FullyAssociativeLRU(machine.llc))
                series[method].append(
                    counters.total_requests * line_bytes / graph.num_edges
                )
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ablation_line_size",
        format_series(
            "line bytes",
            LINE_BYTES,
            series,
            title=f"Bytes moved per edge vs line size (urand n={NUM_VERTICES}, c/n=0.5)",
        ),
    )

    base, dpb = series["baseline"], series["dpb"]
    # With tiny lines, the baseline wastes nothing: pull wins.
    assert base[0] < dpb[0]
    # With real 64 B lines and beyond, blocking wins.
    for i, line_bytes in enumerate(LINE_BYTES):
        if line_bytes >= 64:
            assert dpb[i] < base[i], line_bytes
    # The measured flip sits near the model's threshold (b = 6 words
    # = 24 bytes here), within one power-of-two step.
    params = ModelParams(
        n=NUM_VERTICES, k=DEGREE, b=16, c=16 * 1024 // 4
    )
    threshold_bytes = pb_beats_pull_line_size(params) * 4
    measured_flip = next(
        line for line, b_val, d_val in zip(LINE_BYTES, base, dpb) if d_val < b_val
    )
    assert threshold_bytes / 2 <= measured_flip <= threshold_bytes * 4
