"""Section VII experiment — thread scaling and per-thread bin overheads.

Two measurements:

1. the modelled thread-scaling curves of baseline vs DPB (shared memory
   bandwidth, scaling instruction throughput) — reproducing why the
   paper's communication reductions exceed its time reductions;
2. real wall-clock of the genuinely threaded DPB kernel (per-thread bins,
   edge-balanced static binning, atomic-free accumulate), plus the
   communication overhead its per-thread bin tails add.
"""

import numpy as np
import pytest

from repro.kernels import make_kernel, reference_pagerank
from repro.models import SIMULATED_MACHINE
from repro.parallel import ThreadedDPBPageRank, thread_scaling
from repro.utils import format_series

THREADS = [1, 2, 4, 8, 16]


def test_modelled_thread_scaling(benchmark, urand_graph, report):
    def run():
        curves = {}
        for method in ("baseline", "dpb"):
            kernel = make_kernel(urand_graph, method)
            counters = kernel.measure(1)
            times = thread_scaling(
                SIMULATED_MACHINE, counters, kernel.instruction_count(), THREADS
            )
            curves[method] = [times[t].total * 1e3 for t in THREADS]
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "parallel_scaling_model",
        format_series(
            "threads",
            THREADS,
            curves,
            title="Modelled time (ms) vs thread count, urand",
        ),
    )
    base, dpb = curves["baseline"], curves["dpb"]
    # Baseline hits the bandwidth wall early: little gain past 4 threads.
    assert base[0] / base[-1] < 4
    assert base[2] / base[-1] < 1.4
    # DPB scales much further before its (lower) wall.
    assert dpb[0] / dpb[-1] > 2 * (base[0] / base[-1])
    # At full machine width DPB is the faster kernel (the paper's result).
    assert dpb[-1] < base[-1]


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_wallclock_threaded_dpb(benchmark, urand_graph, threads):
    kernel = ThreadedDPBPageRank(urand_graph, num_threads=threads)
    scores = benchmark(kernel.run, 1)
    expected = reference_pagerank(urand_graph, 1)
    np.testing.assert_allclose(scores, expected, rtol=2e-4, atol=1e-9)


def test_per_thread_bin_overhead(benchmark, urand_graph, report):
    def run():
        single = make_kernel(urand_graph, "dpb")
        rows = {1: single.measure(1).total_requests}
        for threads in (2, 4, 8):
            kernel = ThreadedDPBPageRank(
                urand_graph,
                num_threads=threads,
                bin_width=single.layout.bin_width,
            )
            rows[threads] = kernel.measure(1).total_requests
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "parallel_bin_overhead",
        format_series(
            "threads",
            list(rows),
            {"total requests": list(rows.values())},
            title="Communication cost of private per-thread bins (urand, fixed width)",
        ),
    )
    # Monotone but small: the paper accepts this overhead to avoid atomics.
    values = list(rows.values())
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert values[-1] < 1.2 * values[0]
