"""Section IX experiment — preprocessing cost of each optimization.

    "It may be worthwhile to optimize the graph less if the reduction in
    graph preprocessing time is greater than the increase in kernel
    execution time.  Fortunately, preparation for propagation blocking is
    substantially faster than preparation for cache blocking or
    relabelling a graph."

Measure real wall-clock of each preparation step on the same graph:
building the DPB bin layout (a stable counting sort of edges), building
CB's per-block edge lists (the same sort plus materializing every block),
degree-sort relabelling (sort + full graph rebuild), and RCM relabelling
(sequential BFS + rebuild).
"""

import pytest

from repro.graphs import (
    degree_sort_permutation,
    load_graph,
    partition_by_destination,
    rcm_permutation,
)
from repro.kernels.bins import BinLayout
from repro.utils import Timer, format_table


@pytest.fixture(scope="module")
def graph():
    return load_graph("kron", scale=0.5)


def test_preprocessing_costs(benchmark, graph, report):
    def run_all():
        times = {}
        with Timer() as t:
            BinLayout(graph, 2048)
        times["pb bin layout"] = t.elapsed
        with Timer() as t:
            partition_by_destination(graph, 2048)
        times["cb partition"] = t.elapsed
        with Timer() as t:
            graph.permuted(degree_sort_permutation(graph))
        times["degree relabel"] = t.elapsed
        with Timer() as t:
            graph.permuted(rcm_permutation(graph))
        times["rcm relabel"] = t.elapsed
        return times

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "preprocessing",
        format_table(
            ["preparation", "seconds"],
            [[name, round(seconds, 4)] for name, seconds in times.items()],
            title=f"One-time preparation cost ({graph!r})",
        ),
    )
    # The paper's ordering: PB preparation cheapest, relabelling dearest.
    assert times["pb bin layout"] <= times["cb partition"]
    assert times["pb bin layout"] < times["degree relabel"]
    assert times["pb bin layout"] < 0.2 * times["rcm relabel"]
