"""Section IX extension — propagation blocking for generalized SpMV.

Shape to reproduce: on a low-locality weighted (non-binary) matrix much
larger than the cache, PB-SpMV moves fewer cache lines than row-major
SpMV; the crossover disappears when the vector fits in cache — the same
economics as PageRank, carried to non-square weighted matrices.
"""

import numpy as np
import pytest

from repro.kernels import SparseMatrix, spmv, spmv_trace
from repro.memsim import FullyAssociativeLRU, simulate
from repro.models import SIMULATED_MACHINE
from repro.utils import format_table


@pytest.fixture(scope="module")
def weighted_matrix():
    rng = np.random.default_rng(90)
    n_rows, n_cols, nnz = 131072, 65536, 2_000_000
    return SparseMatrix.from_coo(
        n_rows,
        n_cols,
        rng.integers(0, n_rows, size=nnz),
        rng.integers(0, n_cols, size=nnz),
        rng.normal(size=nnz).astype(np.float32),
    )


def traffic(matrix, method):
    engine = FullyAssociativeLRU(SIMULATED_MACHINE.llc)
    counters = simulate(
        spmv_trace(matrix, method=method, bin_width=2048, machine=SIMULATED_MACHINE),
        engine,
    )
    return counters


def test_spmv_pb_reduces_communication(benchmark, weighted_matrix, report):
    row = traffic(weighted_matrix, "row")
    pb = benchmark.pedantic(
        lambda: traffic(weighted_matrix, "pb"), rounds=1, iterations=1
    )
    rows = [
        ["row-major", row.total_reads, row.total_writes, row.total_requests],
        ["prop-block", pb.total_reads, pb.total_writes, pb.total_requests],
    ]
    report(
        "spmv_extension",
        format_table(
            ["method", "reads", "writes", "requests"],
            rows,
            title="SpMV (131072 x 65536, nnz=2M, weighted): communication",
        ),
    )
    assert pb.total_requests < 0.75 * row.total_requests
    # And both compute the same answer.
    x = np.random.default_rng(91).normal(size=weighted_matrix.num_cols).astype(
        np.float32
    )
    np.testing.assert_allclose(
        spmv(weighted_matrix, x, method="pb", bin_width=2048),
        spmv(weighted_matrix, x, method="row"),
        rtol=2e-3,
        atol=1e-4,
    )
