"""Real wall-clock timing of the executable NumPy kernels (pytest-benchmark).

These are genuine measurements, not the simulator: each strategy's
vectorized implementation runs a full PageRank iteration on the scaled
urand graph.  Exact wall-clock ratios differ from the paper's C++ — NumPy's
per-op overheads shift the balance — but every strategy computes identical
scores, and the numbers record what the *Python* implementations cost.
"""

import numpy as np
import pytest

from repro.kernels import make_kernel, reference_pagerank

METHODS = ["baseline", "push", "cb", "pb", "dpb"]


@pytest.fixture(scope="module")
def kernels(urand_graph):
    # Construction performs each strategy's preprocessing (transpose,
    # partition, bin layout) once, exactly as the paper excludes it.
    return {method: make_kernel(urand_graph, method) for method in METHODS}


@pytest.fixture(scope="module")
def expected(urand_graph):
    return reference_pagerank(urand_graph, 1)


@pytest.mark.parametrize("method", METHODS)
def test_wallclock_iteration(benchmark, kernels, expected, method):
    kernel = kernels[method]
    scores = benchmark(kernel.run, 1)
    np.testing.assert_allclose(scores, expected, rtol=2e-4, atol=1e-9)
