"""Energy experiment — the paper's Section I motivation, quantified.

"Reducing communication can also save energy, as moving data consumes more
energy than the arithmetic operations that manipulate it."  Apply the
two-term energy model to every suite graph: propagation blocking's 4x
instruction blow-up costs far less energy than its 3-4x traffic reduction
saves — except on web, where the traffic was never there to save.
"""

from repro.graphs import LOW_LOCALITY_NAMES
from repro.kernels import make_kernel
from repro.models.energy import DEFAULT_ENERGY_MODEL
from repro.utils import format_table


def test_energy_accounting(benchmark, suite_graphs, suite_data, report):
    model = DEFAULT_ENERGY_MODEL

    def run():
        rows = []
        ratios = {}
        for name in suite_graphs:
            base = suite_data[name]["baseline"]
            dpb = suite_data[name]["dpb"]
            e_base = model.energy(base.counters, base.instructions)
            e_dpb = model.energy(dpb.counters, dpb.instructions)
            ratio = e_base["total"] / e_dpb["total"]
            ratios[name] = ratio
            rows.append(
                [
                    name,
                    round(e_base["total"] * 1e3, 3),
                    round(e_dpb["dram"] * 1e3, 3),
                    round(e_dpb["core"] * 1e3, 3),
                    round(e_dpb["total"] * 1e3, 3),
                    round(ratio, 2),
                ]
            )
        return rows, ratios

    rows, ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "energy",
        format_table(
            [
                "graph",
                "baseline mJ",
                "DPB dram mJ",
                "DPB core mJ",
                "DPB total mJ",
                "saving",
            ],
            rows,
            title="Modelled energy per PageRank iteration (scaled suite)",
        ),
    )
    for name in LOW_LOCALITY_NAMES:
        assert ratios[name] > 1.2, name  # energy win everywhere locality is poor
    assert ratios["web"] < 1.0  # and a loss where it is not
