"""Compiled-tier kernel speed: the headline number for ``repro.compiled``.

Times the propagation-blocking bin/accumulate loop — the paper's hot path
— through the pure-NumPy oracle (``pb``) and the compiled tier
(``pb-compiled``) on the same graph and bin layout, asserting

* bit-identical scores (the compiled tier's accuracy contract), and
* **>= 10x wall-clock speedup** per iteration,

and emits ``BENCH_kernel_speed.json`` with backend warm-up (compile/JIT
cost) reported *separately* from steady-state iteration time, following
Balaji & Lucia's preprocessing-cost accounting: the speedup claim is for
the steady state, and the document carries what it costs to get there.

Also reports the ``compiled`` cache engine against ``stackdist`` on the
gather workload of ``bench_ablation_engine.test_engine_speed`` (counters
bit-identical; speed informational — no floor asserted).

Knobs for slow machines: ``REPRO_KERNEL_BENCH_VERTICES`` (default 2^23;
the committed document uses 2^24), ``REPRO_KERNEL_BENCH_ITERATIONS``
(default 2), ``REPRO_KERNEL_BENCH_ACCESSES`` (engine part, default 2^22).
Skips when no compiled backend is available (the ``numpy`` fallback would
compare the oracle against itself).
"""

import os
from time import perf_counter

import numpy as np
import pytest

from repro.compiled import available, backend_name, warmup
from repro.graphs import build_csr, uniform_random_graph
from repro.kernels import make_kernel
from repro.memsim import CacheConfig, Stream, irregular_chunk, make_engine, simulate
from repro.utils import format_table

from benchmarks.emit_bench import emit_bench

#: Bin width tuned for host caches (1024 write streams = 64 KiB of active
#: lines in the binning phase), not for the simulated machine: this bench
#: measures *host* wall-clock, unlike every traffic bench.
BIN_WIDTH = 16384


def test_kernel_speed(report):
    if not available():
        pytest.skip("no compiled backend (numba or a C compiler) available")

    num_vertices = int(
        os.environ.get("REPRO_KERNEL_BENCH_VERTICES", str(1 << 23))
    )
    iterations = int(os.environ.get("REPRO_KERNEL_BENCH_ITERATIONS", "2"))
    degree = 16
    graph = build_csr(uniform_random_graph(num_vertices, degree, seed=7))

    warm = warmup()  # compile/JIT outside the timed region, reported below

    oracle = make_kernel(graph, "pb", bin_width=BIN_WIDTH)
    fast = make_kernel(graph, "pb", tier="compiled", bin_width=BIN_WIDTH)
    assert fast.backend == backend_name()

    fast.run(1)  # absorb one-time layout preparation (inverse permutation)
    start = perf_counter()
    fast_scores = fast.run(iterations)
    fast_seconds = (perf_counter() - start) / iterations

    start = perf_counter()
    oracle_scores = oracle.run(iterations)
    oracle_seconds = (perf_counter() - start) / iterations

    assert np.array_equal(oracle_scores, fast_scores)
    speedup = oracle_seconds / fast_seconds

    # ---- compiled cache engine vs the vectorized exact oracle ----
    num_accesses = int(
        os.environ.get("REPRO_KERNEL_BENCH_ACCESSES", str(1 << 22))
    )
    config = CacheConfig(capacity_bytes=64 * 256, line_bytes=64)
    rng = np.random.default_rng(1234)
    lines = rng.integers(0, 1 << 22, size=num_accesses)
    engine_seconds = {}
    engine_counters = {}
    for name in ("stackdist", "compiled"):
        engine = make_engine(name, config)
        start = perf_counter()
        counters = simulate(
            [irregular_chunk(lines, stream=Stream.VERTEX_CONTRIB)], engine
        )
        engine_seconds[name] = perf_counter() - start
        engine_counters[name] = counters.as_dict()
    assert engine_counters["compiled"] == engine_counters["stackdist"]
    engine_speedup = engine_seconds["stackdist"] / engine_seconds["compiled"]

    m = graph.num_edges
    rows = [
        ["pb (numpy oracle)", round(oracle_seconds, 3), round(m / oracle_seconds / 1e6, 1)],
        [f"pb-compiled ({warm['backend']})", round(fast_seconds, 3), round(m / fast_seconds / 1e6, 1)],
    ]
    report(
        "kernel_speed",
        format_table(
            ["kernel", "s/iter", "Medges/s"],
            rows,
            title=f"PB bin/accumulate wall-clock, n={num_vertices} m={m} "
            f"width={BIN_WIDTH}: {speedup:.1f}x "
            f"(warm-up {warm['seconds']:.2f}s, separate); "
            f"engine compiled vs stackdist: {engine_speedup:.1f}x",
        ),
    )
    emit_bench(
        "kernel_speed",
        {
            "pb/numpy_seconds_per_iter": oracle_seconds,
            "pb/compiled_seconds_per_iter": fast_seconds,
            "pb/speedup": speedup,
            "pb/compiled_medges_per_sec": m / fast_seconds / 1e6,
            "warmup/seconds": warm["seconds"],
            "engine/stackdist_accesses_per_sec": num_accesses
            / engine_seconds["stackdist"],
            "engine/compiled_accesses_per_sec": num_accesses
            / engine_seconds["compiled"],
            "engine/speedup_over_stackdist": engine_speedup,
        },
        meta={
            "source": "bench_kernel_speed",
            "backend": warm["backend"],
            "num_vertices": num_vertices,
            "degree": degree,
            "bin_width": BIN_WIDTH,
            "iterations": iterations,
            "engine_accesses": num_accesses,
            "units": "seconds per PageRank iteration (run only; trace/"
            "simulation excluded); warm-up is the one-time backend "
            "compile/JIT cost, not included in iteration time",
        },
    )
    assert speedup >= 10.0
