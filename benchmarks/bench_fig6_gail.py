"""Figure 6 — memory requests per edge (the GAIL communication metric).

Shapes to reproduce: PB and DPB perform nearly constant communication per
edge across wildly different graphs (the paper's headline observation),
while the baseline's per-edge traffic tracks each graph's locality; on web
the baseline's naturally low traffic already captures blocking's benefit.
"""

def test_fig6_gail(benchmark, paper_plan, report):
    fig = benchmark.pedantic(
        lambda: paper_plan.artifact("fig6"),
        rounds=1,
        iterations=1,
    )
    report("fig6_gail", fig.render())

    idx = {name: i for i, name in enumerate(fig.x_values)}
    base = fig.series["Baseline"]
    dpb = fig.series["DPB"]
    pb = fig.series["PB"]
    # Near-constant per-edge traffic for the propagation-blocked kernels.
    assert max(dpb) / min(dpb) < 1.5
    assert max(pb) / min(pb) < 1.5
    # The baseline varies far more (web's locality vs urand's absence).
    assert max(base) / min(base) > 2.5
    # On web, the baseline itself is the most efficient strategy.
    assert base[idx["web"]] < dpb[idx["web"]]
    # Everywhere else DPB beats the baseline.
    for name in idx:
        if name != "web":
            assert dpb[idx[name]] < base[idx[name]], name
