"""Sweep-dispatch benchmark — what the shared-memory graph plane buys.

Runs the figure 9/10 bin-width sweep (the canonical shared-graph plan:
every width cell re-uses one of the eight suite graphs) twice at scale
0.25 with a two-worker pool — once shipping graphs by value through the
pickle pipe, once through :class:`repro.parallel.shm.GraphStore` refs —
and records the control-plane cost of each:

* **dispatch bytes per cell**: pickled submission size, by value vs by
  ref.  The by-ref side must be at least 10x smaller (in practice it is
  thousands of times smaller: a ref is ~250 bytes regardless of graph
  size);
* **cold wall clock**: end-to-end plan execution, no cache, same
  workers — the by-ref side avoids serializing every graph once per
  dispatched cell.  The two modes alternate for ``ROUNDS`` rounds and
  each side reports its minimum (the low-noise estimator: dispatch
  savings are a few percent of a compute-dominated sweep at this scale,
  well inside single-run jitter);
* **peak aggregate RSS**: sum of per-worker peak RSS from the fleet
  telemetry — by-ref workers map one shared copy of each graph instead
  of owning private deserialized copies.

The two runs must also produce byte-identical rendered artifacts — the
plane is a transport, not a semantic change.

Emits ``BENCH_sweep_dispatch.json``.  The bytes metrics are
deterministic and gated by the bench sentinel; wall times land in the
ungated ``wall_seconds/*`` namespace per the metrics schema.
"""

import pickle
import time

from repro.graphs import load_suite
from repro.harness import figure9_spec, figure10_spec
from repro.obs import events as _events
from repro.parallel.shm import GraphStore
from repro.parallel.sweep import SweepCell
from repro.plan import compile_plan, execute_plan

from benchmarks.conftest import SUITE_SEED
from benchmarks.emit_bench import emit_bench

DISPATCH_SCALE = 0.25
DISPATCH_WORKERS = 2
#: Subset of the fig9/10 width sweep: enough cells (8 graphs x 5 widths)
#: to exercise affinity lanes while keeping the repeated cold runs cheap.
DISPATCH_WIDTHS = [64, 256, 1024, 4096, 16384]
#: Cold-run repetitions per dispatch mode (min taken per side).
ROUNDS = 3


def _plan(graphs):
    return compile_plan(
        [
            figure9_spec(graphs, DISPATCH_WIDTHS),
            figure10_spec(graphs, DISPATCH_WIDTHS),
        ]
    )


def _sweep_cells(plan):
    return [
        SweepCell(
            key=plan.labels[fingerprint],
            fn=cell.fn,
            args=cell.args,
            kwargs=cell.kwargs,
        )
        for fingerprint, cell in plan.cells.items()
    ]


def _mean_pickled_bytes(cells):
    return sum(len(pickle.dumps(cell)) for cell in cells) / len(cells)


def _timed_run(graphs, *, shm, label):
    """One cold plan execution; returns (artifacts, seconds, fleet)."""
    plan = _plan(graphs)
    with _events.collecting() as bus:
        start = time.perf_counter()
        results = execute_plan(plan, workers=DISPATCH_WORKERS, shm=shm, label=label)
        seconds = time.perf_counter() - start
    renders = {
        name: results.artifact(name).render() for name in ("fig9", "fig10")
    }
    return renders, seconds, bus.fleet_summary()


def _aggregate_rss(fleet):
    return sum(w["peak_rss_bytes"] for w in fleet["per_worker"].values())


def test_sweep_dispatch(benchmark, report):
    graphs = load_suite(seed=SUITE_SEED, scale=DISPATCH_SCALE)

    # -- control-plane bytes: what one dispatched cell costs on the wire
    plan = _plan(graphs)
    value_cells = _sweep_cells(plan)
    with GraphStore(label="bench_dispatch") as store:
        ref_cells = [store.publish_cell(cell) for cell in value_cells]
        value_bytes = _mean_pickled_bytes(value_cells)
        ref_bytes = _mean_pickled_bytes(ref_cells)
    reduction = value_bytes / ref_bytes

    # -- cold wall clock + worker RSS, by value vs by ref, alternating
    # rounds so slow host drift hits both modes equally
    def measurement_rounds():
        value_runs, shm_runs = [], []
        for _ in range(ROUNDS):
            value_runs.append(_timed_run(graphs, shm=False, label="dispatch_value"))
            shm_runs.append(_timed_run(graphs, shm=True, label="dispatch_shm"))
        return value_runs, shm_runs

    value_runs, shm_runs = benchmark.pedantic(
        measurement_rounds, rounds=1, iterations=1
    )
    value_renders, value_seconds, value_fleet = min(
        value_runs, key=lambda run: run[1]
    )
    shm_renders, shm_seconds, shm_fleet = min(shm_runs, key=lambda run: run[1])
    # Every round of every mode must render the same bytes.
    for renders, _, _ in value_runs + shm_runs:
        assert renders == value_renders

    lines = [
        f"cells:            {plan.cells_unique} "
        f"({len(graphs)} graphs x {len(DISPATCH_WIDTHS)} widths)",
        f"bytes per cell:   {value_bytes:,.0f} (value) / {ref_bytes:,.0f} (ref)",
        f"bytes reduction:  {reduction:,.1f}x",
        f"cold wall time:   {value_seconds:.3f}s (value) / {shm_seconds:.3f}s (shm)"
        f"  [min of {ROUNDS}]",
        f"aggregate RSS:    {_aggregate_rss(value_fleet) / 2**20:,.1f} MiB (value) / "
        f"{_aggregate_rss(shm_fleet) / 2**20:,.1f} MiB (shm)",
        f"shm telemetry:    {shm_fleet['shm']['published']} published, "
        f"{shm_fleet['shm']['attached']} attaches, "
        f"peak {shm_fleet['shm']['peak_resident_graphs']} resident/worker",
    ]
    report("sweep_dispatch", "sweep dispatch cost\n" + "\n".join(lines))
    emit_bench(
        "sweep_dispatch",
        {
            "cells": plan.cells_unique,
            "bytes_per_cell/value": value_bytes,
            "bytes_per_cell/ref": ref_bytes,
            "bytes_reduction": reduction,
            "shm/published": shm_fleet["shm"]["published"],
            "shm/peak_resident_graphs": shm_fleet["shm"]["peak_resident_graphs"],
            "wall_seconds/cold_value": value_seconds,
            "wall_seconds/cold_shm": shm_seconds,
            "wall_seconds/speedup": value_seconds / shm_seconds,
            "host_rss/aggregate_value_mib": _aggregate_rss(value_fleet) / 2**20,
            "host_rss/aggregate_shm_mib": _aggregate_rss(shm_fleet) / 2**20,
        },
        meta={
            "source": "bench_sweep_dispatch",
            "scale": DISPATCH_SCALE,
            "workers": DISPATCH_WORKERS,
            "rounds": ROUNDS,
            "units": "bytes / seconds / MiB",
        },
    )

    # The acceptance bar: handles beat pickled arrays by >= 10x per cell.
    assert reduction >= 10.0
    # The plane is pure transport: rendered artifacts are byte-identical.
    assert shm_renders == value_renders
    # The graph plane actually ran: every suite graph published exactly once.
    assert shm_fleet["shm"]["published"] == len(graphs)
    assert shm_fleet["shm"]["evicted"] == len(graphs)
