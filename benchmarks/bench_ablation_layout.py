"""Ablation — vertex relabelling vs propagation blocking (Section VIII).

The paper's related-work discussion positions blocking against relabelling:
"there has been extensive prior work on reordering graphs ... but no
reordering technique is beneficial for all input graphs".  This ablation
measures the baseline under four labellings of the same topology and shows
that (a) a good labelling (web's crawl order) recovers locality without
blocking, (b) degree sorting helps skewed graphs some, but (c) on the
uniform random graph no relabelling approaches what DPB achieves.
"""

import pytest

from repro.graphs import (
    degree_sort_permutation,
    load_graph,
    random_permutation,
    rcm_permutation,
)
from repro.harness import run_experiment
from repro.utils import format_table


@pytest.fixture(scope="module")
def kron_graph():
    # Kron at reduced scale: skewed degrees, relabelling-sensitive.
    return load_graph("kron", scale=0.5)


def test_ablation_relabelling_vs_blocking(benchmark, kron_graph, report):
    def run_all():
        rows = {}
        base = run_experiment(kron_graph, "baseline")
        rows["original"] = base
        shuffled = kron_graph.permuted(random_permutation(kron_graph.num_vertices, 1))
        rows["random-relabel"] = run_experiment(shuffled, "baseline")
        by_degree = kron_graph.permuted(degree_sort_permutation(kron_graph))
        rows["degree-sorted"] = run_experiment(by_degree, "baseline")
        by_rcm = kron_graph.permuted(rcm_permutation(kron_graph))
        rows["rcm"] = run_experiment(by_rcm, "baseline")
        rows["dpb (no relabel)"] = run_experiment(kron_graph, "dpb")
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "ablation_layout",
        format_table(
            ["layout", "reads", "writes", "requests/edge"],
            [
                [name, m.reads, m.writes, round(m.gail().requests_per_edge, 3)]
                for name, m in rows.items()
            ],
            title="Ablation: relabelling the kron graph vs propagation blocking",
        ),
    )
    # Degree sorting improves the skewed graph's baseline locality.
    assert rows["degree-sorted"].requests < rows["original"].requests
    # Random relabelling can only hurt.
    assert rows["random-relabel"].requests >= 0.98 * rows["original"].requests
    # No relabelling reaches DPB's communication on this topology.
    for name in ("original", "random-relabel", "degree-sorted", "rcm"):
        assert rows["dpb (no relabel)"].requests < rows[name].requests, name
