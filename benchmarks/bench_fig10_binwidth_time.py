"""Figure 10 — impact of bin width on PB's modelled execution time.

Shapes to reproduce: time is minimized at an intermediate width — large
bins pay LLC misses in the accumulate phase, very small bins pay L1 misses
on the bin insertion points during binning (paper: 512 KB chosen; the
scaled machine's equivalent is the ~1/2-LLC slice).
"""

from benchmarks.conftest import BIN_WIDTHS


def test_fig10_binwidth_time(benchmark, binwidth_plan, report):
    fig = benchmark.pedantic(
        lambda: binwidth_plan.artifact("fig10"),
        rounds=1,
        iterations=1,
    )
    report("fig10_binwidth_time", fig.render())

    mid_slots = range(2, 9)  # moderate widths
    for name, series in fig.series.items():
        if name == "web":
            continue
        best = min(series)
        best_idx = series.index(best)
        # The fastest width is neither extreme.
        assert best_idx not in (0, len(series) - 1), name
        # Both extremes are measurably slower than the sweet spot.
        assert series[0] > 1.05 * best, name
        assert series[-1] > 1.1 * best, name
        # The default-rule width (1/2 LLC slice = 2048 vertices) is near-optimal.
        default_idx = BIN_WIDTHS.index(2048)
        assert series[default_idx] < 1.2 * best, name
        assert best_idx in mid_slots, name
