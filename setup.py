"""Shim for editable installs on environments without the wheel package.

All metadata lives in pyproject.toml; the explicit entry_points below
mirror [project.scripts] for older setuptools whose pyproject support is
incomplete.
"""
from setuptools import setup

setup(entry_points={"console_scripts": ["repro-pb = repro.cli:main"]})
